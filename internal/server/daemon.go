// Package server implements cophyd, the online advisor daemon: a
// long-running, concurrent service over one CoPhy advisor. Statements
// arrive as a stream and are folded into a live workload with
// exponential decay (workload.Stream); what-if costings are answered
// straight from the sharded INUM cache with no global lock; and
// recommendations run through one persistent cophy.Session whose
// block-labeled dual warm starts make each re-solve after a small
// ingestion delta incremental rather than from-scratch — the
// interactive-tuning economics of §4.2 turned into a service.
package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/cophy"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// ErrTooManyCandidates is returned (wrapped) by Recommend when the
// candidate set the request would solve over exceeds the configured
// cap; the HTTP layer maps it to 413.
var ErrTooManyCandidates = errors.New("candidate set exceeds the configured cap")

// Config assembles a daemon.
type Config struct {
	// Catalog and Engine are the tuned system. Both are treated as
	// immutable for the daemon's lifetime.
	Catalog *catalog.Catalog
	Engine  *engine.Engine
	// Advisor tunes the solver (gap tolerance, iteration caps).
	Advisor cophy.Options
	// CGen tunes candidate generation for recommendations.
	CGen cophy.CGenOptions
	// HalfLife is the ingestion decay half-life, measured in ingest
	// batches (each /ingest call ticks the decay clock once). Zero
	// means 64 batches; negative disables decay.
	HalfLife float64
	// MinWeight is the eviction threshold for decayed statements
	// (default 1e-3).
	MinWeight float64
	// RequestTimeout bounds each recommendation request: the handler
	// derives a context deadline from it and the session solve inherits
	// the remaining time as its TimeLimit. Zero means unbounded.
	RequestTimeout time.Duration
	// MaxCandidates caps the candidate set a /recommend request may
	// solve over (the session's existing candidates plus the request's
	// new ones). Zero means uncapped. Exceeding it answers 413.
	MaxCandidates int
	// MaxQueue bounds how many /recommend requests may wait for the
	// session at once; arrivals beyond it are shed immediately with 429
	// and a Retry-After derived from observed solve latency. Zero means
	// 16.
	MaxQueue int
	// QueueTimeout bounds how long an admitted request may wait in the
	// queue before it too is shed with 429. Zero means 2s.
	QueueTimeout time.Duration
	// ProbeBase / ProbeMax bound the exponential backoff of the
	// degraded-mode re-probe loop (how quickly a daemon whose data
	// directory failed retries it). Zero means 500ms / 15s. Exposed
	// mainly so tests can run the state machine at full speed.
	ProbeBase, ProbeMax time.Duration
	// Store, when non-nil, is the durability layer: accepted ingest
	// batches and session changes are logged to its WAL, snapshots
	// capture full state, and New recovers from it before serving —
	// statements, weights, clocks, and a warm first solve all survive a
	// restart. The daemon owns the store's record schema; the caller
	// owns its lifetime (Close after shutdown flush).
	Store *persist.Store
	// AuthToken, when non-empty, requires `Authorization: Bearer
	// <token>` on the mutating endpoints (/ingest, /recommend,
	// /snapshot); a mismatch answers 401. Read-only endpoints stay
	// open.
	AuthToken string
	// RequestLog, when non-nil, receives one structured line per HTTP
	// request: trace ID, endpoint, status, wall time and the span
	// breakdown (queue wait, solver phases, WAL append). Nil disables
	// request logging; metrics are recorded either way.
	RequestLog *slog.Logger
	// SLO declares the objectives GET /slo and the cophyd_slo_* gauges
	// evaluate (parse with obs.ParseObjectives). Empty means none —
	// the windowed telemetry still runs (it also feeds Retry-After).
	SLO []obs.Objective
	// SLOFastWindow / SLOSlowWindow are the burn-rate evaluation
	// windows. Zero means 5m / 1h. Exposed mainly so tests can run the
	// window machinery at full speed.
	SLOFastWindow, SLOSlowWindow time.Duration
	// FlightKeep is how many slowest requests the flight recorder
	// retains per endpoint (zero = 8); FlightEvents bounds its
	// shed/error ring (zero = 64).
	FlightKeep, FlightEvents int
}

// Daemon is the service core. All exported methods are safe for
// concurrent use: WhatIf runs lock-free over the sharded INUM cache,
// Ingest serializes only on the stream's own mutex, and Recommend
// serializes recommendations on the session semaphore behind a bounded
// admission queue — concurrent identical requests coalesce onto one
// solve, excess load is shed with ErrOverloaded instead of queueing
// without bound, and a caller whose context dies gives up immediately
// wherever it is waiting. Durability failures flip the daemon into a
// degraded read-only state (see health.go) instead of killing it.
type Daemon struct {
	cat           *catalog.Catalog
	eng           *engine.Engine
	ad            *cophy.Advisor
	cgen          cophy.CGenOptions
	stream        *workload.Stream
	baseline      *engine.Config
	reqTimeout    time.Duration
	maxCandidates int
	authToken     string

	// sem (capacity 1) guards the session; lastBudget (the budget knob
	// of the most recent recommendation, persisted with the session
	// state) is only touched under it. adm is the bounded admission
	// queue in front of it.
	sem        chan struct{}
	adm        *admission
	session    *cophy.Session
	lastBudget float64

	// flights coalesces concurrent identical recommendations: one entry
	// per (stream generation, budget) currently being solved; followers
	// wait on the leader's result instead of queueing their own solve.
	flMu    sync.Mutex
	flights map[string]*flight

	// health is the serving state machine (healthy/degraded/draining);
	// degradedCause names the durability failure that forced read-only
	// mode; probeBase/probeMax bound the recovery probe backoff.
	health          atomic.Int32
	degradedCause   atomic.Value // string
	degradedEntries *obs.Counter
	probeBase       time.Duration
	probeMax        time.Duration

	// store is the durability layer (nil = memory-only). pMu orders
	// additive WAL records against the snapshot cut: Ingest holds it
	// across apply+append so a batch is atomic in the log exactly as it
	// is in memory, and WriteSnapshot holds it across rotate+export so
	// no acknowledged batch can be both inside the snapshot and in the
	// surviving tail. snapMu serializes whole snapshots.
	store  *persist.Store
	pMu    sync.Mutex
	snapMu sync.Mutex
	// recMu guards recovery: the background warming phase fills in its
	// wall time after the daemon is already serving /stats.
	recMu    sync.Mutex
	recovery RecoveryStats
	// warming is true from recovery until the background re-prepare of
	// the recovered statements completes; surfaced in /healthz and
	// /stats (the daemon serves — possibly colder — throughout).
	warming atomic.Bool

	// wiMu guards the what-if entry FIFO: the "whatif-<hash>" INUM
	// entries are keyed by statement content, not stream ID, so the
	// stream's eviction hook never sees them — they are bounded here
	// instead, oldest-first.
	wiMu    sync.Mutex
	wiSeen  map[string]bool
	wiOrder []string

	// reg is the metric registry behind /metrics; the counters below are
	// its registered series (see metrics.go), shared verbatim with the
	// /stats snapshot. degradedEntries lives above with the health state.
	reg    *obs.Registry
	reqLog *slog.Logger

	// slo owns the windowed request telemetry and evaluates the
	// declared objectives (slo.go); flight retains the traces worth
	// keeping — slowest per endpoint plus every shed/error — for
	// GET /debug/traces. Both are always non-nil.
	slo    *sloEngine
	flight *obs.FlightRecorder

	ingested       *obs.Counter
	coalesced      *obs.Counter
	numFallbacks   *obs.Counter
	warmDowngrades *obs.Counter
	whatifs        *obs.Counter
	recommends     *obs.Counter
	evicted        *obs.Counter
	rebases        *obs.Counter
	compactions    *obs.Counter
	walRecords     *obs.Counter
	snapshots      *obs.Counter
	persistErrors  *obs.Counter
	planStale      *obs.Counter
}

// maxWhatIfEntries caps the distinct what-if statements whose template
// plans stay cached; beyond it the oldest entry is evicted.
const maxWhatIfEntries = 4096

// New builds a daemon over the given system. It is the no-ctx
// convenience form of NewCtx; a caller with a boot context (cophyd
// threads its signal-aware one, so a SIGTERM can abort a long WAL
// replay) should use NewCtx directly.
func New(cfg Config) (*Daemon, error) {
	return NewCtx(context.Background(), cfg)
}

// NewCtx builds a daemon over the given system. ctx bounds the boot
// work — in particular the WAL replay of recovery, which re-ingests
// every logged batch through the live code path and can run long after
// a crash mid-traffic.
func NewCtx(ctx context.Context, cfg Config) (*Daemon, error) {
	if cfg.Catalog == nil || cfg.Engine == nil {
		return nil, fmt.Errorf("server: Catalog and Engine are required")
	}
	halfLife := cfg.HalfLife
	if halfLife == 0 {
		halfLife = 64
	}
	if halfLife < 0 {
		halfLife = 0 // no decay
	}
	if cfg.CGen.MaxKeyCols == 0 && !cfg.CGen.Covering && cfg.CGen.DBA == nil {
		cfg.CGen = cophy.CGenOptions{Covering: true} // untuned: defaults
	}
	d := &Daemon{
		cat:           cfg.Catalog,
		eng:           cfg.Engine,
		ad:            cophy.NewAdvisor(cfg.Catalog, cfg.Engine, cfg.Advisor),
		cgen:          cfg.CGen,
		stream:        workload.NewStream(workload.StreamConfig{HalfLife: halfLife, MinWeight: cfg.MinWeight}),
		baseline:      engine.NewConfig(tpch.BaselineIndexes(cfg.Catalog)...),
		reqTimeout:    cfg.RequestTimeout,
		maxCandidates: cfg.MaxCandidates,
		authToken:     cfg.AuthToken,
		sem:           make(chan struct{}, 1),
		adm:           newAdmission(cfg.MaxQueue, cfg.QueueTimeout),
		flights:       make(map[string]*flight),
		probeBase:     cfg.ProbeBase,
		probeMax:      cfg.ProbeMax,
		reqLog:        cfg.RequestLog,
		slo:           newSLOEngine(cfg.SLO, cfg.SLOFastWindow, cfg.SLOSlowWindow),
		flight:        obs.NewFlightRecorder(cfg.FlightKeep, cfg.FlightEvents),
	}
	d.registerMetrics(obs.NewRegistry())
	if d.probeBase <= 0 {
		d.probeBase = 500 * time.Millisecond
	}
	if d.probeMax < d.probeBase {
		d.probeMax = 15 * time.Second
		if d.probeMax < d.probeBase {
			d.probeMax = d.probeBase
		}
	}
	// Memory bound, first slice: when decay evicts a statement from the
	// live workload, its INUM cache entries (query and update shell) go
	// with it, so the cache tracks the live workload instead of growing
	// without bound.
	d.stream.OnEvict(func(id string) {
		d.evicted.Add(int64(d.ad.Inum.Evict(id)))
	})
	// Warm restart: rebuild the stream, counters, INUM cache and
	// session warm state from the data directory before serving.
	if cfg.Store != nil {
		d.store = cfg.Store
		if err := d.recover(ctx); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// IngestResult reports one ingestion batch.
type IngestResult struct {
	// Accepted is the number of statements folded into the stream.
	Accepted int `json:"accepted"`
	// Live is the distinct-statement count of the live workload.
	Live int `json:"live"`
	// Observed is the lifetime statement count.
	Observed int64 `json:"observed"`
}

// Ingest parses a batch of SQL-ish statements and folds them into the
// live workload. weightScale, when positive, multiplies every parsed
// statement weight (a cheap way to replay traces with importance).
// Each batch advances the decay clock by one tick. With a store
// configured, every accepted batch is logged to the WAL before the
// call returns, so a restart replays it deterministically — same
// statements, same IDs, same decay and evictions. While the daemon is
// degraded (durable writes failing) the batch is refused outright:
// accepting state that cannot be logged would silently break the
// restart contract.
func (d *Daemon) Ingest(ctx context.Context, sql string, weightScale float64) (IngestResult, error) {
	if err := d.checkWritable(); err != nil {
		return IngestResult{}, err
	}
	return d.applyIngest(ctx, sql, weightScale, d.store != nil)
}

// applyIngest is Ingest's body; recovery replays WAL records through
// it with record=false. The persistence mutex makes each batch atomic
// in the log exactly as it is in memory: batches serialize against
// each other and against the snapshot cut, so replay reproduces the
// live application order. The record is appended *before* the batch
// is applied (log-before-apply): a failed append rejects the batch
// untouched — a client retry then applies it once, not twice — and a
// crash between append and apply merely replays a record whose effects
// never happened.
func (d *Daemon) applyIngest(ctx context.Context, sql string, weightScale float64, record bool) (IngestResult, error) {
	w, err := workload.Parse(d.cat, sql)
	if err != nil {
		return IngestResult{}, err
	}
	d.pMu.Lock()
	if record {
		if err := d.appendWAL(ctx, walRecord{Type: "ingest", SQL: sql, Scale: weightScale}); err != nil {
			d.pMu.Unlock()
			return IngestResult{}, err
		}
	}
	for _, s := range w.Statements {
		if weightScale > 0 {
			s.Weight *= weightScale
		}
		d.stream.Observe(s)
	}
	d.stream.Tick()
	// Still under pMu: a snapshot cut between the stream mutation and
	// this add would otherwise persist an undercounted ingested stat
	// that recovery makes permanent.
	d.ingested.Add(int64(w.Size()))
	d.pMu.Unlock()
	return IngestResult{
		Accepted: w.Size(),
		Live:     d.stream.Len(),
		Observed: d.stream.Observed(),
	}, nil
}

// WhatIfResult is one hypothetical costing.
type WhatIfResult struct {
	// Cost is the INUM cost of the statement under the hypothetical
	// configuration (baseline ∪ requested indexes).
	Cost float64 `json:"cost"`
	// BaseCost is the cost under the baseline configuration alone.
	BaseCost float64 `json:"base_cost"`
	// Improvement is 1 − Cost/BaseCost.
	Improvement float64 `json:"improvement"`
}

// WhatIf prices one statement under a hypothetical index
// configuration without any optimizer call beyond the (cached) INUM
// preparation. It takes no daemon-wide lock: concurrent calls contend
// only on the INUM cache's shard stripes.
func (d *Daemon) WhatIf(sql string, indexes []*catalog.Index) (WhatIfResult, error) {
	w, err := workload.Parse(d.cat, sql)
	if err != nil {
		return WhatIfResult{}, err
	}
	if w.Size() != 1 {
		return WhatIfResult{}, fmt.Errorf("server: what-if takes exactly one statement, got %d", w.Size())
	}
	s := w.Statements[0]
	// Key the INUM cache by the statement's canonical form so repeated
	// what-ifs of one statement (under any configuration) share the
	// template plans, while distinct statements never collide.
	id := "whatif-" + fnvHex(s.String())
	if s.Query != nil {
		s.Query.ID = id
	} else {
		s.Update.ID = id
	}
	for _, ix := range indexes {
		t := d.cat.Table(ix.Table)
		if t == nil {
			return WhatIfResult{}, fmt.Errorf("server: index on unknown table %q", ix.Table)
		}
		for _, col := range append(append([]string(nil), ix.Key...), ix.Include...) {
			if t.Column(col) == nil {
				return WhatIfResult{}, fmt.Errorf("server: unknown column %s.%s", ix.Table, col)
			}
		}
	}
	cfg := engine.NewConfig(d.baseline.Indexes()...)
	for _, ix := range indexes {
		cfg.Add(ix)
	}
	cost, err := d.ad.Inum.StatementCost(s, cfg)
	if err != nil {
		return WhatIfResult{}, err
	}
	base, err := d.ad.Inum.StatementCost(s, d.baseline)
	if err != nil {
		return WhatIfResult{}, err
	}
	d.trackWhatIf(id)
	d.whatifs.Add(1)
	res := WhatIfResult{Cost: cost, BaseCost: base}
	if base > 0 {
		res.Improvement = 1 - cost/base
	}
	return res, nil
}

// trackWhatIf records a what-if cache entry in the bounded FIFO,
// evicting the oldest entry's template plans once the cap is reached.
func (d *Daemon) trackWhatIf(id string) {
	d.wiMu.Lock()
	var drop string
	if d.wiSeen == nil {
		d.wiSeen = make(map[string]bool)
	}
	if !d.wiSeen[id] {
		d.wiSeen[id] = true
		d.wiOrder = append(d.wiOrder, id)
		if len(d.wiOrder) > maxWhatIfEntries {
			drop = d.wiOrder[0]
			d.wiOrder = d.wiOrder[1:]
			delete(d.wiSeen, drop)
		}
	}
	d.wiMu.Unlock()
	if drop != "" {
		d.evicted.Add(int64(d.ad.Inum.Evict(drop)))
	}
}

// RecommendOptions parameterize one recommendation.
type RecommendOptions struct {
	// BudgetFraction is the storage budget as a fraction of the data
	// size; zero or negative means unconstrained.
	BudgetFraction float64 `json:"budget_fraction"`
}

// RecommendResult is one recommendation over the live workload.
type RecommendResult struct {
	Indexes []IndexSpec `json:"indexes"`
	// EstCost/Lower/Gap mirror cophy.Result.
	EstCost float64 `json:"est_cost"`
	Lower   float64 `json:"lower"`
	Gap     float64 `json:"gap"`
	// Iters counts solver subgradient iterations — warm incremental
	// re-solves show up as a drop here.
	Iters int `json:"iters"`
	// TraceID echoes the request's trace ID (also in the X-Trace-Id
	// response header), so a slow recommendation can be matched to its
	// request-log line and span breakdown. Coalesced followers carry
	// their own ID, not the leader's.
	TraceID string `json:"trace_id,omitempty"`
	// Warm is true when the solve reused the previous session state.
	Warm bool `json:"warm"`
	// WorkloadSize and Candidates describe the solved instance.
	WorkloadSize int `json:"workload_size"`
	Candidates   int `json:"candidates"`
	// InumMillis/BuildMillis/SolveMillis break down the wall time.
	InumMillis  float64 `json:"inum_ms"`
	BuildMillis float64 `json:"build_ms"`
	SolveMillis float64 `json:"solve_ms"`
	// Infeasible recommendations name the offending constraints.
	Infeasible bool     `json:"infeasible,omitempty"`
	Violated   []string `json:"violated,omitempty"`
}

// Recommend solves the index-selection problem over the current live
// workload. The first call is cold (INUM preparation plus a cold
// Lagrangian solve); subsequent calls reuse the daemon's session — the
// INUM cache, the previous incumbent as MIP start, and the previous
// multipliers matched to surviving statements by block label — so a
// re-solve after a small ingestion delta is incremental.
//
// Overload discipline: concurrent calls against an unchanged stream
// and identical budget coalesce — one of them solves, the rest wait on
// that result (a burst of K identical requests performs one solve, not
// K). Requests that do need their own solve pass through the bounded
// admission queue; a full queue or an expired queue wait sheds the
// request with ErrOverloaded (429 + Retry-After at the HTTP layer). A
// caller whose own deadline expires gives up wherever it is waiting
// (503). A candidate set beyond the configured cap is rejected before
// any solver work (413). While the daemon is degraded the request is
// refused outright (503 naming the cause): a recommendation mutates
// session state whose durability cannot currently be maintained.
func (d *Daemon) Recommend(ctx context.Context, opts RecommendOptions) (RecommendResult, error) {
	for {
		if err := d.checkWritable(); err != nil {
			return RecommendResult{}, err
		}
		res, err, retry := d.coalesce(ctx, opts)
		if retry {
			continue
		}
		if tr := obs.TraceFrom(ctx); tr != nil {
			res.TraceID = tr.ID
		}
		return res, err
	}
}

// flight is one in-progress recommendation shared by coalesced callers.
type flight struct {
	done chan struct{}
	res  RecommendResult
	err  error
}

// coalesce shares one solve among concurrent identical requests. The
// key is (stream generation, budget): any ingest between two requests
// changes the generation, so only requests that would provably compute
// the same answer share. The third return asks the caller to retry:
// the leader died of its *own* context while this follower is still
// alive, so the follower deserves a fresh flight rather than
// inheriting a timeout it never had.
func (d *Daemon) coalesce(ctx context.Context, opts RecommendOptions) (RecommendResult, error, bool) {
	key := fmt.Sprintf("%d|%v", d.stream.Generation(), opts.BudgetFraction)
	d.flMu.Lock()
	if f, ok := d.flights[key]; ok {
		d.flMu.Unlock()
		d.coalesced.Inc()
		stop := obs.TraceFrom(ctx).StartSpan("coalesce.wait")
		select {
		case <-f.done:
			stop()
			if f.err != nil && (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) && ctx.Err() == nil {
				return RecommendResult{}, f.err, true
			}
			return f.res, f.err, false
		case <-ctx.Done():
			stop()
			return RecommendResult{}, ctx.Err(), false
		}
	}
	f := &flight{done: make(chan struct{})}
	d.flights[key] = f
	d.flMu.Unlock()
	f.res, f.err = d.solveRecommend(ctx, opts)
	d.flMu.Lock()
	delete(d.flights, key)
	d.flMu.Unlock()
	close(f.done)
	return f.res, f.err, false
}

// solveRecommend is the flight leader's path: admission queue, session
// slot, solve.
func (d *Daemon) solveRecommend(ctx context.Context, opts RecommendOptions) (RecommendResult, error) {
	w := d.stream.Snapshot()
	if w.Size() == 0 {
		return RecommendResult{}, fmt.Errorf("server: no workload ingested yet")
	}
	if err := ctx.Err(); err != nil {
		return RecommendResult{}, err
	}
	stopQueue := obs.TraceFrom(ctx).StartSpan("queue.wait")
	release, err := d.adm.admit(ctx, d.sem)
	stopQueue()
	if err != nil {
		return RecommendResult{}, err
	}
	defer release()
	t0 := time.Now()

	// Candidate generation runs inside the session slot, after
	// admission: a request the queue sheds costs nothing but the
	// snapshot above.
	cons := d.consFor(opts.BudgetFraction)
	stopCand := obs.TraceFrom(ctx).StartSpan("candgen")
	cands := cophy.Candidates(d.cat, w, d.cgen)
	stopCand()

	// The session's candidate positions are append-only (they anchor
	// the solver's z variables), so dead candidates — ones no live
	// statement generates anymore — keep their z variables until the
	// session is rebuilt. Two policies bound that growth, in order of
	// preference:
	//
	// Compaction (warm): when the dead candidates outnumber the live
	// ones — cheap to detect, one set intersection — the session is
	// rebased onto the live candidate set with the surviving
	// multipliers carried across by block label and position remap, so
	// the next solve stays warm.
	//
	// Rebase (cold): with a candidate cap configured, a request whose
	// own candidate set exceeds it is the caller's problem (413); a
	// union over the cap that compaction could not fix (the session is
	// cold, nothing to carry) drops the session for a cold re-session
	// over the live candidates instead of wedging every future request.
	own := make(map[string]bool, len(cands))
	for _, ix := range cands {
		own[ix.ID()] = true
	}
	if d.session != nil && d.session.Warm() {
		dead := 0
		for _, ix := range d.session.Candidates() {
			if !own[ix.ID()] {
				dead++
			}
		}
		if live := len(d.session.Candidates()) - dead; dead > live {
			d.session.Compact(cands)
			d.compactions.Add(1)
		}
	}
	if d.maxCandidates > 0 {
		if len(own) > d.maxCandidates {
			return RecommendResult{}, fmt.Errorf("server: %w: %d > %d", ErrTooManyCandidates, len(own), d.maxCandidates)
		}
		if d.session != nil {
			union := len(own)
			for _, ix := range d.session.Candidates() {
				if !own[ix.ID()] {
					union++
				}
			}
			if union > d.maxCandidates {
				d.session = nil // rebase: next solve is cold over live candidates only
				d.rebases.Add(1)
			}
		}
	}

	if d.session == nil {
		d.session = d.ad.NewSession(w, cands, cons)
	} else {
		d.session.SetWorkload(w)
		d.session.AddCandidates(cands)
		d.session.SetConstraints(cons)
	}
	// Infeasible solves are not retained by the session, so a failed
	// recommendation leaves the next one cold — ask the session, don't
	// count calls.
	warm := d.session.Warm()
	res, err := d.session.SolveCtx(ctx)
	// The solve re-prepared INUM entries for every snapshot statement —
	// including any that a concurrent Tick evicted while the solve ran,
	// whose IDs will never fire the eviction hook again. Sweep the
	// snapshot against the live stream so those re-inserted entries
	// cannot leak (run even on error: a cancelled solve may already
	// have prepared them).
	live := d.stream.LiveIDs()
	for _, st := range w.Statements {
		if id := st.ID(); !live[id] {
			d.evicted.Add(int64(d.ad.Inum.Evict(id)))
		}
	}
	if err != nil {
		return RecommendResult{}, err
	}
	// Feed the admission layer's latency estimate (the basis of
	// Retry-After) with the full in-slot wall time: candidate
	// generation plus solve, the cost the next queued caller will pay.
	d.adm.observe(time.Since(t0))
	d.recommends.Inc()
	d.numFallbacks.Add(int64(res.NumericFallbacks))
	d.warmDowngrades.Add(int64(res.WarmDowngrades))
	d.lastBudget = opts.BudgetFraction
	// Log the post-solve session state — candidates, constraint knob,
	// duals, incumbent — as an absolute WAL record, so a hard kill any
	// time after this response still restarts with a warm first solve.
	// Best-effort by design: the recommendation itself was computed and
	// is returned; losing its warmth to a disk error costs a cold
	// re-solve, not correctness.
	if d.store != nil && !res.Infeasible {
		if st := d.sessionStateLocked(opts.BudgetFraction); st != nil {
			// appendWAL counts the failure in persist_errors.
			_ = d.appendWAL(ctx, walRecord{Type: "session", Session: st})
		}
	}

	out := RecommendResult{
		EstCost:      res.EstCost,
		Lower:        res.Lower,
		Gap:          res.Gap,
		Iters:        res.Iters,
		Warm:         warm,
		WorkloadSize: w.Size(),
		Candidates:   len(d.session.Candidates()),
		InumMillis:   res.Times.INUM.Seconds() * 1000,
		BuildMillis:  res.Times.Build.Seconds() * 1000,
		SolveMillis:  res.Times.Solve.Seconds() * 1000,
		Infeasible:   res.Infeasible,
		Violated:     res.Violated,
	}
	for _, ix := range res.Indexes {
		out.Indexes = append(out.Indexes, specOf(d.cat, ix))
	}
	return out, nil
}

// Stats is the daemon's observability snapshot.
type Stats struct {
	// Health is the serving state ("healthy", "degraded", "draining");
	// DegradedCause names the durability failure while degraded.
	Health        string `json:"health"`
	DegradedCause string `json:"degraded_cause,omitempty"`

	Live       int     `json:"live_statements"`
	LiveWeight float64 `json:"live_weight"`
	Observed   int64   `json:"observed_statements"`
	Ticks      int64   `json:"decay_ticks"`
	Ingested   int64   `json:"ingested"`
	WhatIfs    int64   `json:"whatifs"`
	Recommends int64   `json:"recommends"`
	// QueueDepth / QueuedPeak / ShedRequests / CoalescedRequests expose
	// the admission layer: how many recommendations are waiting right
	// now, the worst it has been, how many were refused with 429, and
	// how many shared another request's solve instead of their own.
	QueueDepth        int64 `json:"queue_depth"`
	QueuedPeak        int64 `json:"queued_peak"`
	ShedRequests      int64 `json:"shed_requests"`
	CoalescedRequests int64 `json:"coalesced_requests"`
	// DegradedEntries counts healthy→degraded transitions over the
	// daemon's lifetime; DiskErrors counts failed filesystem operations
	// observed by the store.
	DegradedEntries int64 `json:"degraded_entries"`
	DiskErrors      int64 `json:"disk_errors"`
	// PreparedQueries and PrepCalls expose the INUM cache state;
	// EvictedEntries counts cache entries dropped by stream eviction.
	PreparedQueries int   `json:"prepared_queries"`
	PrepCalls       int64 `json:"prep_calls"`
	EvictedEntries  int64 `json:"evicted_entries"`
	// NumericFallbacks counts LP solves (across all recommendations)
	// that hit a numerical failure in the sparse simplex and were
	// rescued by the dense oracle on the remaining iteration budget;
	// WarmDowngrades counts warm bases numerically defeated into cold
	// installs. Nonzero values mean the solver is paying for flaky
	// bases — visible here instead of silently doubling solve work.
	NumericFallbacks int64 `json:"numeric_fallbacks"`
	WarmDowngrades   int64 `json:"warm_downgrades"`
	// SessionRebases counts cold re-sessions forced by the candidate
	// cap; SessionCompactions counts warm rebases onto the live
	// candidate set (dead candidates outnumbered live ones and the
	// multipliers were carried across).
	SessionRebases     int64 `json:"session_rebases"`
	SessionCompactions int64 `json:"session_compactions"`
	// PlanCacheHits / PlanCacheMisses expose the INUM shape cache:
	// hits are statement preparations that skipped every optimizer call
	// by reusing another statement's derivation (or a persisted one).
	// PlanCacheStale counts recoveries that found a plan payload stamped
	// by a different derivation environment and re-derived instead.
	// PlanShapes is the number of derived shapes currently cached.
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	PlanCacheStale  int64 `json:"plan_cache_stale"`
	PlanShapes      int   `json:"plan_shapes"`
	// Warming is true while the post-recovery background re-prepare is
	// still running; the daemon serves throughout.
	Warming bool `json:"warming"`
	// SLO carries the evaluated objective states when objectives are
	// configured — the same evaluation GET /slo serves, informational
	// only (an SLO page never changes Health).
	SLO []ObjectiveStatus `json:"slo,omitempty"`
	// WALRecords / SnapshotsWritten / PersistErrors expose the
	// durability layer — always present, so "zero errors" never reads
	// as a missing key; Recovery describes what the last restart
	// rebuilt and is absent when no data directory is configured.
	WALRecords       int64          `json:"wal_records"`
	SnapshotsWritten int64          `json:"snapshots_written"`
	PersistErrors    int64          `json:"persist_errors"`
	Recovery         *RecoveryStats `json:"recovery,omitempty"`
}

// Snapshot returns current counters.
func (d *Daemon) Snapshot() Stats {
	calls, _ := d.ad.Inum.PrepStats()
	hits, misses := d.ad.Inum.ShapeStats()
	health, cause := d.Health()
	st := Stats{
		PlanCacheHits:      hits,
		PlanCacheMisses:    misses,
		PlanCacheStale:     d.planStale.Load(),
		PlanShapes:         d.ad.Inum.ShapeCount(),
		Warming:            d.warming.Load(),
		Health:             health,
		DegradedCause:      cause,
		QueueDepth:         d.adm.depth.Load(),
		QueuedPeak:         d.adm.peak.Load(),
		ShedRequests:       d.adm.shed.Load(),
		CoalescedRequests:  d.coalesced.Load(),
		DegradedEntries:    d.degradedEntries.Load(),
		Live:               d.stream.Len(),
		LiveWeight:         d.stream.LiveWeight(),
		Observed:           d.stream.Observed(),
		Ticks:              d.stream.Ticks(),
		Ingested:           d.ingested.Load(),
		WhatIfs:            d.whatifs.Load(),
		Recommends:         d.recommends.Load(),
		PreparedQueries:    d.ad.Inum.Prepared(),
		PrepCalls:          calls,
		EvictedEntries:     d.evicted.Load(),
		NumericFallbacks:   d.numFallbacks.Load(),
		WarmDowngrades:     d.warmDowngrades.Load(),
		SessionRebases:     d.rebases.Load(),
		SessionCompactions: d.compactions.Load(),
		WALRecords:         d.walRecords.Load(),
		SnapshotsWritten:   d.snapshots.Load(),
		PersistErrors:      d.persistErrors.Load(),
	}
	if d.store != nil {
		d.recMu.Lock()
		rec := d.recovery
		d.recMu.Unlock()
		st.Recovery = &rec
		st.DiskErrors = d.store.DiskErrors()
	}
	if len(d.slo.objectives) > 0 {
		st.SLO = d.slo.evaluate()
	}
	return st
}

// fnvHex is a 64-bit FNV-1a hash rendered as hex.
func fnvHex(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}
