package server

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// sloEngine evaluates the daemon's declared objectives against
// windowed telemetry. It owns the sliding-window side of the request
// metrics: per-endpoint windowed latency histograms (layered over the
// registered lifetime series, so /metrics is untouched) and windowed
// request/error/shed counters, all fed by the instrument middleware.
//
// Evaluation is pull-based — /slo, the SLO gauges and /stats each
// compute states on demand from the current window contents; there is
// no background ticker and no alert state to get stuck. An objective's
// state is derived from its burn rate over two windows (fast ~5m,
// slow ~1h) per the multi-window multi-burn-rate recipe in
// internal/obs/slo.go: page needs both windows burning hard, and
// recovery is automatic as the fast window drains.
//
// SLO states are strictly informational. They never feed the
// degraded-mode state machine (health.go) and never refuse traffic:
// a paging latency objective with a healthy disk is a capacity
// conversation, not a reason to serve less.
type sloEngine struct {
	objectives []obs.Objective
	fast, slow time.Duration
	epoch      time.Duration

	// lat holds one windowed histogram per endpoint, created lazily by
	// the middleware on first request.
	latMu sync.RWMutex
	lat   map[string]*obs.WindowedHistogram

	req  *obs.WindowedCounter // all requests
	errs *obs.WindowedCounter // 5xx responses, any endpoint
	recs *obs.WindowedCounter // recommend requests (shed_rate denominator)
	shed *obs.WindowedCounter // recommend requests answered 429
}

// newSLOEngine builds the engine. Zero windows default to 5m/1h; the
// slow window is clamped to at least the fast one. The sub-window
// epoch is a quarter of the fast window, so a fast-window snapshot is
// at most 25% stale at the boundary.
func newSLOEngine(objectives []obs.Objective, fast, slow time.Duration) *sloEngine {
	if fast <= 0 {
		fast = 5 * time.Minute
	}
	if slow <= 0 {
		slow = time.Hour
	}
	if slow < fast {
		slow = fast
	}
	epoch := fast / 4
	if epoch < time.Millisecond {
		epoch = time.Millisecond
	}
	return &sloEngine{
		objectives: objectives,
		fast:       fast,
		slow:       slow,
		epoch:      epoch,
		lat:        make(map[string]*obs.WindowedHistogram),
		req:        obs.NewWindowedCounter(epoch, slow),
		errs:       obs.NewWindowedCounter(epoch, slow),
		recs:       obs.NewWindowedCounter(epoch, slow),
		shed:       obs.NewWindowedCounter(epoch, slow),
	}
}

// latFor returns the endpoint's windowed latency histogram, creating
// it over the given lifetime series on first use. Idempotent: later
// calls with the same endpoint return the same window regardless of
// the life argument.
func (e *sloEngine) latFor(endpoint string, life *obs.Histogram) *obs.WindowedHistogram {
	e.latMu.RLock()
	w, ok := e.lat[endpoint]
	e.latMu.RUnlock()
	if ok {
		return w
	}
	e.latMu.Lock()
	defer e.latMu.Unlock()
	if w, ok = e.lat[endpoint]; ok {
		return w
	}
	w = obs.NewWindowedHistogram(life, e.epoch, e.slow)
	e.lat[endpoint] = w
	return w
}

// note folds one completed request into the windowed rate counters.
func (e *sloEngine) note(endpoint string, status int) {
	e.req.Inc()
	if status >= 500 {
		e.errs.Inc()
	}
	if endpoint == "recommend" {
		e.recs.Inc()
		if status == 429 {
			e.shed.Inc()
		}
	}
}

// ObjectiveStatus is one objective's evaluated state — the JSON shape
// of GET /slo and the `slo` block of /stats.
type ObjectiveStatus struct {
	// Objective is the canonical declaration ("recommend.p99<=250ms").
	Objective string `json:"objective"`
	Kind      string `json:"kind"`
	State     string `json:"state"`
	// Budget is the allowed bad fraction; FastBurn/SlowBurn are the
	// observed bad fractions over each window divided by it (burn 1 =
	// spending the budget exactly on schedule).
	Budget   float64 `json:"budget"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// FastBad of FastTotal requests violated the objective inside the
	// fast window; SlowBad/SlowTotal likewise for the slow one.
	FastBad   int64 `json:"fast_bad"`
	FastTotal int64 `json:"fast_total"`
	SlowBad   int64 `json:"slow_bad"`
	SlowTotal int64 `json:"slow_total"`
	// Value is the measured fast-window value in the objective's own
	// units — the quantile in milliseconds for latency objectives, the
	// bad fraction for rate objectives — next to Limit, the declared
	// bound in the same units.
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
}

// status evaluates one objective right now.
func (e *sloEngine) status(o obs.Objective) ObjectiveStatus {
	st := ObjectiveStatus{
		Objective: o.String(),
		Kind:      string(o.Kind),
		Budget:    o.Budget(),
	}
	switch o.Kind {
	case obs.KindLatency:
		st.Limit = float64(o.Limit) / float64(time.Millisecond)
		e.latMu.RLock()
		w := e.lat[o.Endpoint]
		e.latMu.RUnlock()
		if w != nil {
			fastSnap := w.WindowSnapshot(e.fast)
			slowSnap := w.WindowSnapshot(e.slow)
			st.FastTotal = fastSnap.Count
			st.FastBad = fastSnap.CountAbove(o.Limit.Nanoseconds())
			st.SlowTotal = slowSnap.Count
			st.SlowBad = slowSnap.CountAbove(o.Limit.Nanoseconds())
			st.Value = float64(fastSnap.Quantile(o.Quantile)) / float64(time.Millisecond)
		}
	case obs.KindRate:
		st.Limit = o.MaxRate
		bad, total := e.errs, e.req
		if o.Rate == "shed_rate" {
			bad, total = e.shed, e.recs
		}
		st.FastBad = bad.WindowTotal(e.fast)
		st.FastTotal = total.WindowTotal(e.fast)
		st.SlowBad = bad.WindowTotal(e.slow)
		st.SlowTotal = total.WindowTotal(e.slow)
		if st.FastTotal > 0 {
			st.Value = float64(st.FastBad) / float64(st.FastTotal)
		}
	}
	st.FastBurn = obs.BurnRate(st.FastBad, st.FastTotal, st.Budget)
	st.SlowBurn = obs.BurnRate(st.SlowBad, st.SlowTotal, st.Budget)
	st.State = string(obs.StateFor(st.FastBurn, st.SlowBurn))
	return st
}

// evaluate computes every objective's status, declaration order.
func (e *sloEngine) evaluate() []ObjectiveStatus {
	out := make([]ObjectiveStatus, len(e.objectives))
	for i, o := range e.objectives {
		out[i] = e.status(o)
	}
	return out
}

// sloResponse is the GET /slo body.
type sloResponse struct {
	FastWindow string            `json:"fast_window"`
	SlowWindow string            `json:"slow_window"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

func (e *sloEngine) response() sloResponse {
	return sloResponse{
		FastWindow: e.fast.String(),
		SlowWindow: e.slow.String(),
		Objectives: e.evaluate(),
	}
}
