package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrOverloaded is returned (wrapped) by Recommend when the admission
// queue sheds the request — the queue is full, or the request waited
// out its queue timeout without reaching the session. The HTTP layer
// maps it to 429 with a Retry-After computed from the observed solve
// latency.
var ErrOverloaded = errors.New("server overloaded")

// admission is the bounded queue in front of the session slot. The
// previous design was a bare capacity-1 semaphore: under a burst every
// caller parked on it until its own deadline fired, so overload
// surfaced as N slow 503s instead of N−1 fast 429s. Now at most
// maxQueue callers may wait; the rest are shed immediately, and a
// waiter that outlives the queue timeout is shed too — the server
// promises a bounded wait or a fast no, never a slow maybe.
type admission struct {
	tickets chan struct{} // queue slots: holders are waiting for the session
	timeout time.Duration

	// solve records in-slot solve wall time — the basis for
	// Retry-After: a shed caller is told to come back after roughly the
	// p95 solve time for each request ahead of it. It is a sliding
	// window layered over the registered cophyd_solve_seconds series
	// (metrics.go wires both), so Retry-After reads the *recent* p95 —
	// after a latency regime shift (cache warmed, workload compacted)
	// the estimate tracks the new regime within retryWindow instead of
	// being dragged by the lifetime distribution — while the exposition
	// still sees every sample. With nothing in the window (an idle
	// server's first burst) the lifetime p95 is the fallback.
	solve       *obs.WindowedHistogram
	retryWindow time.Duration

	depth atomic.Int64 // callers currently queued
	peak  atomic.Int64 // high-water mark of depth
	shed  *obs.Counter // requests refused with ErrOverloaded
}

func newAdmission(maxQueue int, timeout time.Duration) *admission {
	if maxQueue <= 0 {
		maxQueue = 16
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &admission{
		tickets:     make(chan struct{}, maxQueue),
		timeout:     timeout,
		solve:       obs.NewWindowedHistogram(obs.NewHistogram(), time.Minute, 5*time.Minute),
		retryWindow: 5 * time.Minute,
		shed:        &obs.Counter{},
	}
}

// admit queues the caller for the session slot. On success it returns
// a release function the caller must invoke when done with the
// session. Failure modes: a full queue or an expired queue timeout
// shed with ErrOverloaded; a dead caller context returns its error.
func (a *admission) admit(ctx context.Context, sem chan struct{}) (func(), error) {
	select {
	case a.tickets <- struct{}{}:
	default:
		a.shed.Inc()
		return nil, fmt.Errorf("%w: admission queue full (%d waiting)", ErrOverloaded, cap(a.tickets))
	}
	d := a.depth.Add(1)
	for {
		p := a.peak.Load()
		if d <= p || a.peak.CompareAndSwap(p, d) {
			break
		}
	}
	leave := func() {
		a.depth.Add(-1)
		<-a.tickets
	}
	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	select {
	case sem <- struct{}{}:
		leave() // queued → in service: the queue slot frees for the next caller
		return func() { <-sem }, nil
	case <-timer.C:
		leave()
		a.shed.Inc()
		return nil, fmt.Errorf("%w: queued longer than %s", ErrOverloaded, a.timeout)
	case <-ctx.Done():
		leave()
		return nil, ctx.Err()
	}
}

// observe folds one completed solve's wall time into the windowed
// latency histogram (whose lifetime side is the cophyd_solve_seconds
// exposition).
func (a *admission) observe(d time.Duration) {
	a.solve.Observe(d)
}

// retryAfter estimates, in whole seconds (≥1, capped at 60), how long
// a shed caller should wait: the queue ahead of it times the p95 solve
// latency over the recent window — pessimistic on purpose, since a
// caller that returns too early is shed again, but never stale: the
// lifetime distribution only answers when the window is empty. With no
// solve observed at all it answers 1, the only honest number before
// data exists.
func (a *admission) retryAfter() int {
	snap := a.solve.WindowSnapshot(a.retryWindow)
	if snap.Count == 0 {
		snap = a.solve.Snapshot()
	}
	if snap.Count == 0 {
		return 1
	}
	backlog := float64(a.depth.Load() + 1) // queued callers plus the one in service
	sec := math.Ceil(float64(snap.Quantile(0.95)) * backlog / float64(time.Second))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return int(sec)
}
