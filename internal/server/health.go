package server

import (
	"errors"
	"fmt"
	"time"
)

// ErrDegraded is returned (wrapped, naming the cause) by the mutating
// endpoints while the daemon is in degraded mode: the durability layer
// has failed persistently, so writes that could not be made durable
// are refused rather than silently accepted. The HTTP layer maps it to
// 503 with a Retry-After. Read paths (/whatif, /stats) stay up.
var ErrDegraded = errors.New("daemon degraded (read-only)")

// Health states. The machine is: healthy → degraded (on a durability
// failure) → healthy (when a background probe finds the data directory
// writable again); healthy|degraded → draining (at shutdown, one-way).
const (
	stateHealthy int32 = iota
	stateDegraded
	stateDraining
)

func healthName(s int32) string {
	switch s {
	case stateDegraded:
		return "degraded"
	case stateDraining:
		return "draining"
	default:
		return "healthy"
	}
}

// Health reports the daemon's current state ("healthy", "degraded" or
// "draining") and, when degraded, the cause.
func (d *Daemon) Health() (state, cause string) {
	s := d.health.Load()
	if s == stateDegraded {
		if c, _ := d.degradedCause.Load().(string); c != "" {
			cause = c
		}
	}
	return healthName(s), cause
}

// checkWritable refuses mutations while degraded, naming the cause.
func (d *Daemon) checkWritable() error {
	if d.health.Load() != stateDegraded {
		return nil
	}
	cause, _ := d.degradedCause.Load().(string)
	return fmt.Errorf("%w: %s", ErrDegraded, cause)
}

// enterDegraded transitions healthy → degraded and starts the re-probe
// loop. Idempotent and cheap under concurrent failures: only the CAS
// winner records the cause and spawns the prober; a daemon already
// degraded (or draining) is left alone.
func (d *Daemon) enterDegraded(cause error) {
	if d.store == nil {
		return
	}
	// Cause first, transition second: a reader that observes degraded
	// always finds a cause.
	d.degradedCause.Store(cause.Error())
	if !d.health.CompareAndSwap(stateHealthy, stateDegraded) {
		return
	}
	d.degradedEntries.Add(1)
	go d.probeLoop()
}

// probeLoop re-probes the data directory with bounded exponential
// backoff until it is writable again (→ healthy) or the daemon starts
// draining. Probe also repairs any torn WAL tail, so recovery is not
// just observed but actively completed.
func (d *Daemon) probeLoop() {
	backoff := d.probeBase
	for {
		time.Sleep(backoff)
		if d.health.Load() != stateDegraded {
			return
		}
		if err := d.store.Probe(); err == nil {
			d.degradedCause.Store("")
			d.health.CompareAndSwap(stateDegraded, stateHealthy)
			return
		}
		if backoff *= 2; backoff > d.probeMax {
			backoff = d.probeMax
		}
	}
}

// StartDraining marks the daemon draining: /healthz turns 503 so load
// balancers stop routing here, while in-flight and late-arriving
// requests still complete — graceful shutdown's first step, one-way.
// The shutdown flush (the final WriteSnapshot) still runs in this
// state; only the health signal changes.
func (d *Daemon) StartDraining() {
	d.health.Store(stateDraining)
}
