package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cophy"
	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// faultDaemon builds a daemon over a FaultFS-backed store so tests can
// fail the data directory out from under it, with a fast probe loop.
func faultDaemon(t *testing.T, mutate func(*Config)) (*Daemon, *persist.FaultFS) {
	t.Helper()
	ffs := persist.NewFaultFS(nil)
	store, err := persist.Open(t.TempDir(), persist.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.05})
	cfg := Config{
		Catalog:   cat,
		Engine:    engine.New(cat, engine.SystemA()),
		Advisor:   cophy.Options{GapTol: 0.02, RootIters: 160, MaxNodes: 16},
		Store:     store,
		ProbeBase: 5 * time.Millisecond,
		ProbeMax:  50 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return d, ffs
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoalescedFollowersShareOneResult is the deterministic coalescing
// pin: followers that arrive while an identical request is in flight
// wait on its result instead of solving — zero extra solver runs, one
// shared answer, the coalesced counter telling the story.
func TestCoalescedFollowersShareOneResult(t *testing.T) {
	d := testDaemon(t)
	const K = 5
	key := fmt.Sprintf("%d|%v", d.stream.Generation(), 0.25)
	f := &flight{done: make(chan struct{})}
	d.flMu.Lock()
	d.flights[key] = f
	d.flMu.Unlock()

	solves0 := d.ad.Solves()
	var wg sync.WaitGroup
	results := make([]RecommendResult, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = d.Recommend(context.Background(), RecommendOptions{BudgetFraction: 0.25})
		}(i)
	}
	waitFor(t, "all followers to coalesce", func() bool { return d.coalesced.Load() == K })

	f.res = RecommendResult{EstCost: 42, Warm: true}
	d.flMu.Lock()
	delete(d.flights, key)
	d.flMu.Unlock()
	close(f.done)
	wg.Wait()

	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d: %v", i, errs[i])
		}
		if results[i].EstCost != 42 {
			t.Fatalf("follower %d got %+v, want the shared flight result", i, results[i])
		}
	}
	if got := d.ad.Solves() - solves0; got != 0 {
		t.Fatalf("followers ran %d solves of their own", got)
	}
	if st := d.Snapshot(); st.CoalescedRequests != K {
		t.Fatalf("coalesced_requests = %d, want %d", st.CoalescedRequests, K)
	}
}

// TestCoalesceLeaderTimeoutRetries: a follower must not inherit the
// leader's *own* deadline death — it retries with a fresh flight.
func TestCoalesceLeaderTimeoutRetries(t *testing.T) {
	d := testDaemon(t)
	key := fmt.Sprintf("%d|%v", d.stream.Generation(), 0.0)
	f := &flight{done: make(chan struct{})}
	d.flMu.Lock()
	d.flights[key] = f
	d.flMu.Unlock()

	var ferr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, ferr = d.Recommend(context.Background(), RecommendOptions{})
	}()
	waitFor(t, "follower to coalesce", func() bool { return d.coalesced.Load() == 1 })

	f.err = context.DeadlineExceeded // the leader ran out of ITS time
	d.flMu.Lock()
	delete(d.flights, key)
	d.flMu.Unlock()
	close(f.done)
	<-done

	// The retry became its own leader over the empty daemon, so the
	// error it reports is its own ("no workload"), not the leader's
	// timeout.
	if ferr == nil || errors.Is(ferr, context.DeadlineExceeded) {
		t.Fatalf("follower inherited the leader's deadline death: %v", ferr)
	}
	if !strings.Contains(ferr.Error(), "no workload") {
		t.Fatalf("retry did not run its own flight: %v", ferr)
	}
}

// TestQueueShedsWhenFull: with the session busy and the queue at
// capacity, the next arrival is shed immediately with ErrOverloaded —
// not parked until its deadline.
func TestQueueShedsWhenFull(t *testing.T) {
	d := testDaemon(t)
	post1 := httptest.NewServer(d.Handler())
	defer post1.Close()
	gen := workload.Hom(workload.HomConfig{Queries: 8, Seed: 3})
	post(t, post1, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)

	d.adm = newAdmission(1, time.Minute) // queue of one, patient waiters
	d.sem <- struct{}{}                  // the session is busy elsewhere
	defer func() { <-d.sem }()

	// Occupy the single queue slot (distinct budget → no coalescing).
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	defer cancelWaiter()
	waiting := make(chan error, 1)
	go func() {
		_, err := d.Recommend(waiterCtx, RecommendOptions{BudgetFraction: 0.3})
		waiting <- err
	}()
	waitFor(t, "first caller to queue", func() bool { return d.adm.depth.Load() == 1 })

	t0 := time.Now()
	_, err := d.Recommend(context.Background(), RecommendOptions{BudgetFraction: 0.6})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
	if waited := time.Since(t0); waited > 2*time.Second {
		t.Fatalf("shed took %s — that is queueing, not shedding", waited)
	}
	if st := d.Snapshot(); st.ShedRequests != 1 || st.QueuedPeak != 1 || st.QueueDepth != 1 {
		t.Fatalf("admission counters off: %+v", st)
	}

	cancelWaiter()
	if werr := <-waiting; !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", werr)
	}
}

// TestQueueTimeoutSheds: a queued caller that cannot reach the session
// within the queue timeout is shed with ErrOverloaded, well before its
// own request deadline.
func TestQueueTimeoutSheds(t *testing.T) {
	d := testDaemon(t)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	gen := workload.Hom(workload.HomConfig{Queries: 8, Seed: 3})
	post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)

	d.adm = newAdmission(4, 25*time.Millisecond)
	d.sem <- struct{}{} // wedge the session
	defer func() { <-d.sem }()

	_, err := d.Recommend(context.Background(), RecommendOptions{BudgetFraction: 0.4})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue timeout returned %v, want ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "queued longer") {
		t.Fatalf("timeout shed does not say so: %v", err)
	}
	if d.adm.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", d.adm.shed.Load())
	}
}

// TestBurstAcceptance is the ISSUE's overload acceptance pin, over
// real HTTP: a burst of K concurrent identical /recommend requests
// performs at most a handful of solves (coalescing), and every caller
// gets either a valid result or a 429 whose Retry-After header and
// unified JSON body are present.
func TestBurstAcceptance(t *testing.T) {
	d := testDaemon(t)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	gen := workload.Hom(workload.HomConfig{Queries: 12, Seed: 7})
	post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)
	d.adm = newAdmission(1, 10*time.Second) // tiny queue: sheds must happen on the distinct burst

	// Phase 1 — identical burst: everyone coalesces onto one flight.
	// The session is wedged until every follower has registered: on a
	// one-CPU box the scheduler can otherwise serialize the clients so
	// completely that each solve finishes before the next request
	// arrives and no coalescing window ever exists.
	const K = 8
	solves0, coalesced0 := d.ad.Solves(), d.coalesced.Load()
	d.sem <- struct{}{}
	var wg sync.WaitGroup
	codes := make([]int, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := post(t, srv, "/recommend", RecommendOptions{BudgetFraction: 0.5}, nil)
			codes[i] = resp.StatusCode
		}(i)
	}
	waitFor(t, "burst followers to coalesce", func() bool { return d.coalesced.Load()-coalesced0 >= K-1 })
	<-d.sem
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK && c != http.StatusTooManyRequests {
			t.Fatalf("identical burst caller %d: status %d, want 200 or 429", i, c)
		}
	}
	if got := d.ad.Solves() - solves0; got > K/2 {
		t.Fatalf("identical burst of %d ran %d solves — coalescing is not working", K, got)
	}

	// Phase 2 — distinct burst: K different budgets cannot coalesce;
	// with a queue of one, the overflow must shed as 429 + Retry-After.
	var mu sync.Mutex
	sheds := 0
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := RecommendOptions{BudgetFraction: 0.3 + 0.05*float64(i)}
			raw, _ := json.Marshal(body)
			resp, err := srv.Client().Post(srv.URL+"/recommend", "application/json", strings.NewReader(string(raw)))
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("caller %d: 429 without Retry-After", i)
					return
				}
				var eb errorBody
				if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Status != 429 || eb.RetryAfter < 1 {
					t.Errorf("caller %d: malformed 429 body: %+v (%v)", i, eb, err)
					return
				}
				mu.Lock()
				sheds++
				mu.Unlock()
			default:
				t.Errorf("caller %d: status %d, want 200 or 429", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if sheds == 0 {
		t.Fatalf("distinct burst of %d over a queue of 1 shed nothing", K)
	}
	if st := d.Snapshot(); st.ShedRequests == 0 || st.CoalescedRequests == 0 {
		t.Fatalf("burst left vacuous counters: %+v", st)
	}
}

// TestDegradedStateMachine drives the full circle: healthy → (disk
// failure during an acknowledged-write attempt) → degraded, where
// mutations are refused naming the cause and reads still serve →
// (disk heals, probe notices) → healthy, where mutations flow again.
func TestDegradedStateMachine(t *testing.T) {
	d, ffs := faultDaemon(t, nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	gen := workload.Hom(workload.HomConfig{Queries: 8, Seed: 5})
	if resp := post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest: status %d", resp.StatusCode)
	}

	// The disk dies: every write and every truncate (the repair path)
	// fails, so the next logged ingest cannot be made durable.
	ffs.Fail(persist.FaultRule{Op: persist.OpWrite})
	ffs.Fail(persist.FaultRule{Op: persist.OpTruncate})
	ffs.Fail(persist.FaultRule{Op: persist.OpOpen})
	if _, err := d.Ingest(context.Background(), "SELECT l_tax FROM lineitem WHERE l_tax > :0.5;", 0); !errors.Is(err, ErrPersist) {
		t.Fatalf("ingest on a dead disk returned %v, want ErrPersist", err)
	}

	// Degraded: state, cause, counters, and the refusal discipline.
	if state, cause := d.Health(); state != "degraded" || cause == "" {
		t.Fatalf("health after disk death: %s (%q)", state, cause)
	}
	if _, err := d.Ingest(context.Background(), "SELECT l_tax FROM lineitem WHERE l_tax > :0.5;", 0); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded ingest returned %v, want ErrDegraded", err)
	}
	if _, err := d.Recommend(context.Background(), RecommendOptions{}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded recommend returned %v, want ErrDegraded", err)
	}
	if _, err := d.WriteSnapshot(context.Background()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded snapshot returned %v, want ErrDegraded", err)
	}
	// Reads stay up: /whatif and /stats are exactly the degraded-mode
	// contract.
	var wi WhatIfResult
	if resp := post(t, srv, "/whatif", whatIfRequest{SQL: "SELECT l_tax FROM lineitem WHERE l_tax > :0.5;"}, &wi); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded what-if: status %d", resp.StatusCode)
	}
	st := d.Snapshot()
	if st.Health != "degraded" || st.DegradedCause == "" || st.DegradedEntries != 1 || st.DiskErrors == 0 {
		t.Fatalf("degraded stats: %+v", st)
	}
	// The HTTP surface agrees: 503 /healthz naming the state, and a
	// degraded mutation answers 503 with Retry-After and the cause.
	hr, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb struct{ Status, Cause string }
	json.NewDecoder(hr.Body).Decode(&hb)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || hb.Status != "degraded" || hb.Cause == "" {
		t.Fatalf("degraded /healthz: %d %+v", hr.StatusCode, hb)
	}
	ir, err := srv.Client().Post(srv.URL+"/ingest", "application/json", strings.NewReader(`{"sql":"SELECT l_tax FROM lineitem WHERE l_tax > :0.5;"}`))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	json.NewDecoder(ir.Body).Decode(&eb)
	ir.Body.Close()
	if ir.StatusCode != http.StatusServiceUnavailable || ir.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded /ingest: %d (Retry-After %q)", ir.StatusCode, ir.Header.Get("Retry-After"))
	}
	if !strings.Contains(eb.Error, "degraded") || eb.Status != 503 {
		t.Fatalf("degraded error body does not name the state: %+v", eb)
	}

	// The disk heals; the probe loop must notice and reopen for writes.
	ffs.Reset()
	waitFor(t, "probe recovery", func() bool { s, _ := d.Health(); return s == "healthy" })
	if _, err := d.Ingest(context.Background(), "SELECT l_quantity FROM lineitem WHERE l_quantity > :0.7;", 0); err != nil {
		t.Fatalf("post-recovery ingest: %v", err)
	}
	if st := d.Snapshot(); st.Health != "healthy" || st.DegradedCause != "" {
		t.Fatalf("post-recovery stats: %+v", st)
	}
}

// TestHealthzDraining: StartDraining flips /healthz to 503 "draining"
// so load balancers pull the instance before the listener closes.
func TestHealthzDraining(t *testing.T) {
	d := testDaemon(t)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	d.StartDraining()
	hr, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var hb struct{ Status string }
	json.NewDecoder(hr.Body).Decode(&hb)
	if hr.StatusCode != http.StatusServiceUnavailable || hb.Status != "draining" {
		t.Fatalf("draining /healthz: %d %+v", hr.StatusCode, hb)
	}
}
