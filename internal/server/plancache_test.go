package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// planSeededDir runs generation 1 of the restart fixtures: ingest a
// workload, recommend (deriving template plans for every shape), and
// write a snapshot so the plan payload is on disk. Returns the data
// directory and the number of live statements.
func planSeededDir(t *testing.T) (string, int) {
	t.Helper()
	dir := t.TempDir()
	d1 := durableDaemon(t, dir, nil)
	srv1 := httptest.NewServer(d1.Handler())
	defer srv1.Close()

	gen := workload.Hom(workload.HomConfig{Queries: 20, Seed: 17})
	post(t, srv1, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)
	var rec RecommendResult
	if resp := post(t, srv1, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("gen1 recommend: status %d", resp.StatusCode)
	}
	if d1.ad.Inum.ShapeCount() == 0 {
		t.Fatal("fixture broken: recommend derived no shapes")
	}
	var snap SnapshotResult
	if resp := post(t, srv1, "/snapshot", struct{}{}, &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("gen1 snapshot: status %d", resp.StatusCode)
	}
	return dir, d1.stream.Len()
	// srv1.Close without store.Close or a shutdown snapshot: SIGKILL.
}

// TestRestartImportsPlansZeroDerivations is the ISSUE's restart
// acceptance pin: a kill -9 restart over a snapshot carrying a valid
// plan payload imports the compiled template plans directly and the
// background re-prepare performs ZERO TemplatePlan derivations —
// counter-asserted on the engine's what-if counter, which every
// TemplatePlan path increments.
func TestRestartImportsPlansZeroDerivations(t *testing.T) {
	dir, live := planSeededDir(t)

	d2 := durableDaemon(t, dir, nil)
	st := d2.Snapshot()
	if st.Recovery == nil || st.Recovery.PlanShapes == 0 {
		t.Fatalf("recovery imported no plan shapes: %+v", st.Recovery)
	}
	if st.Recovery.PlanStale {
		t.Fatalf("identical environment reported stale plans: %+v", st.Recovery)
	}
	waitFor(t, "background re-prepare to finish", func() bool { return !d2.warming.Load() })

	if calls := d2.eng.WhatIfCalls(); calls != 0 {
		t.Fatalf("re-prepare over a valid plan payload performed %d TemplatePlan derivations, want 0", calls)
	}
	if hits, misses := d2.ad.Inum.ShapeStats(); misses != 0 || hits == 0 {
		t.Fatalf("shape cache hits=%d misses=%d after import, want all hits", hits, misses)
	}
	if got := d2.ad.Inum.Prepared(); got != live {
		t.Fatalf("prepared %d statements after warming, want %d", got, live)
	}
	st = d2.Snapshot()
	if st.PlanCacheStale != 0 {
		t.Fatalf("plan_cache_stale = %d, want 0", st.PlanCacheStale)
	}
	if st.Warming {
		t.Fatal("stats still report warming after the flag cleared")
	}
	if st.Recovery.WarmMillis <= 0 {
		t.Fatalf("warming finished without reporting WarmMillis: %+v", st.Recovery)
	}

	// The imported plans must actually serve: a recommendation over the
	// recovered stream answers without error.
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	var rec RecommendResult
	if resp := post(t, srv2, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart recommend: status %d", resp.StatusCode)
	}
	if rec.Infeasible || len(rec.Indexes) == 0 {
		t.Fatalf("post-restart recommendation degenerate: %+v", rec)
	}
}

// TestRestartStalePlansRederive: the same snapshot recovered under a
// different cost profile carries a stamp from another derivation
// environment. Recovery must degrade — discard the payload, count it
// in plan_cache_stale, re-derive in the background — and never refuse.
func TestRestartStalePlansRederive(t *testing.T) {
	dir, live := planSeededDir(t)

	d2 := durableDaemon(t, dir, func(c *Config) {
		c.Engine = engine.New(c.Catalog, engine.SystemB())
	})
	st := d2.Snapshot()
	if st.Recovery == nil || !st.Recovery.PlanStale {
		t.Fatalf("changed profile not reported stale: %+v", st.Recovery)
	}
	if st.Recovery.PlanShapes != 0 {
		t.Fatalf("stale payload still imported %d shapes", st.Recovery.PlanShapes)
	}
	if st.PlanCacheStale != 1 {
		t.Fatalf("plan_cache_stale = %d, want 1", st.PlanCacheStale)
	}
	waitFor(t, "background re-derivation to finish", func() bool { return !d2.warming.Load() })

	if calls := d2.eng.WhatIfCalls(); calls == 0 {
		t.Fatal("stale payload recovery performed no derivations — plans were not rebuilt")
	}
	if got := d2.ad.Inum.Prepared(); got != live {
		t.Fatalf("prepared %d statements after re-derivation, want %d", got, live)
	}
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	var rec RecommendResult
	if resp := post(t, srv2, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend after stale-plan recovery: status %d", resp.StatusCode)
	}
	if rec.Infeasible || len(rec.Indexes) == 0 {
		t.Fatalf("recommendation after stale-plan recovery degenerate: %+v", rec)
	}
}

// TestRecoverSnapshotWithoutPlans: a snapshot written before any plans
// existed (byte-identical to the pre-plan-payload snapshot format —
// the plans field is simply absent) recovers cleanly: nothing
// imported, nothing stale, plans re-derived in the background.
func TestRecoverSnapshotWithoutPlans(t *testing.T) {
	dir := t.TempDir()
	d1 := durableDaemon(t, dir, nil)
	srv1 := httptest.NewServer(d1.Handler())
	gen := workload.Hom(workload.HomConfig{Queries: 8, Seed: 3})
	post(t, srv1, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)
	// No recommend: the shape cache is empty, so the snapshot carries
	// no plans field — exactly an old-format snapshot.
	var snap SnapshotResult
	if resp := post(t, srv1, "/snapshot", struct{}{}, &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	srv1.Close()

	d2 := durableDaemon(t, dir, nil)
	st := d2.Snapshot()
	if st.Recovery == nil || !st.Recovery.HadSnapshot {
		t.Fatalf("recovery missed the snapshot: %+v", st.Recovery)
	}
	if st.Recovery.PlanShapes != 0 || st.Recovery.PlanStale || st.PlanCacheStale != 0 {
		t.Fatalf("plan-less snapshot misread: %+v stale=%d", st.Recovery, st.PlanCacheStale)
	}
	waitFor(t, "background derivation to finish", func() bool { return !d2.warming.Load() })
	if calls := d2.eng.WhatIfCalls(); calls == 0 {
		t.Fatal("no derivations after plan-less recovery — cache cannot be warm")
	}
	if got := d2.ad.Inum.Prepared(); got != d2.stream.Len() {
		t.Fatalf("prepared %d statements, want %d", got, d2.stream.Len())
	}
}
