package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cophy"
	"repro/internal/engine"
	"repro/internal/tpch"
	"repro/internal/workload"
)

func testDaemonWith(t *testing.T, mutate func(*Config)) *Daemon {
	t.Helper()
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.05})
	eng := engine.New(cat, engine.SystemA())
	cfg := Config{
		Catalog: cat,
		Engine:  eng,
		Advisor: cophy.Options{GapTol: 0.02, RootIters: 160, MaxNodes: 16},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCacheEvictOnStatementDrop: when stream decay evicts a statement,
// its INUM cache entries must be dropped with it — the daemon's memory
// footprint tracks the live workload, not its full history.
func TestCacheEvictOnStatementDrop(t *testing.T) {
	d := testDaemonWith(t, func(c *Config) {
		c.HalfLife = 1 // aggressive decay: one tick halves every weight
		c.MinWeight = 0.4
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Ingest an initial batch and force the cache to be populated.
	gen := workload.Hom(workload.HomConfig{Queries: 8, Seed: 11})
	post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)
	var rec RecommendResult
	if resp := post(t, srv, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("/recommend status %d", resp.StatusCode)
	}
	before := d.ad.Inum.Prepared()
	if before == 0 {
		t.Fatal("recommend left no prepared queries")
	}

	// Keep one statement alive; everything else decays below MinWeight
	// after a few ticks and must take its cache entries along.
	keep := workload.Hom(workload.HomConfig{Queries: 1, Seed: 99})
	for i := 0; i < 6; i++ {
		post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(keep), WeightScale: 100}, nil)
	}
	live := d.stream.Len()
	after := d.ad.Inum.Prepared()
	if after >= before {
		t.Fatalf("cache did not shrink: %d prepared before eviction, %d after (%d live)", before, after, live)
	}
	if d.Snapshot().EvictedEntries == 0 {
		t.Fatal("eviction counter never moved")
	}

	// A fresh recommendation over the survivors still works.
	if resp := post(t, srv, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("/recommend after eviction: status %d", resp.StatusCode)
	}
}

// TestStreamEvictHookUnit pins the hook contract at the stream level:
// called once per evicted statement, with its stable ID, after the
// lock is released.
func TestStreamEvictHookUnit(t *testing.T) {
	st := workload.NewStream(workload.StreamConfig{HalfLife: 1, MinWeight: 0.4})
	var evicted []string
	st.OnEvict(func(id string) {
		evicted = append(evicted, id)
		st.Len() // reentrant call must not deadlock
	})
	gen := workload.Hom(workload.HomConfig{Queries: 3, Seed: 3})
	var ids []string
	for _, s := range gen.Statements {
		s.Weight = 1
		ids = append(ids, st.Observe(s))
	}
	st.Tick() // 0.5 — above threshold
	if len(evicted) != 0 {
		t.Fatalf("premature eviction: %v", evicted)
	}
	st.Tick() // 0.25 — below threshold: all evicted
	if len(evicted) != len(ids) {
		t.Fatalf("evicted %d of %d", len(evicted), len(ids))
	}
	for i, id := range ids {
		if evicted[i] != id {
			t.Fatalf("eviction order/IDs: got %v want %v", evicted, ids)
		}
	}
}

// postErr posts and returns the status code plus the decoded JSON
// error body (the shared post helper closes the body on non-200).
func postErr(t *testing.T, srv *httptest.Server, path string, body any) (int, map[string]string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("%s: error body not JSON: %v", path, err)
	}
	return resp.StatusCode, decoded
}

// TestRecommendTooManyCandidates: a candidate set beyond the cap is
// 413 with a JSON error body, before any solver work.
func TestRecommendTooManyCandidates(t *testing.T) {
	d := testDaemonWith(t, func(c *Config) { c.MaxCandidates = 2 })
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	gen := workload.Hom(workload.HomConfig{Queries: 12, Seed: 5})
	post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)
	status, body := postErr(t, srv, "/recommend", RecommendOptions{})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", status)
	}
	if body["error"] == "" {
		t.Fatalf("413 body carries no error: %v", body)
	}
	if d.Snapshot().Recommends != 0 {
		t.Fatal("rejected request counted as a recommendation")
	}
}

// TestRecommendRebasesInsteadOfWedging: when the candidate cap is
// exceeded only because the session accumulated candidates of evicted
// statements, the daemon rebases the session (cold re-solve over the
// live candidates) rather than answering 413 forever.
func TestRecommendRebasesInsteadOfWedging(t *testing.T) {
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.05})
	wA := workload.Het(workload.HetConfig{Queries: 8, Seed: 5})
	wB := workload.Hom(workload.HomConfig{Queries: 6, Seed: 21})
	cgen := cophy.CGenOptions{Covering: true}
	sizeOf := func(ws ...*workload.Workload) int {
		seen := map[string]bool{}
		for _, w := range ws {
			for _, ix := range cophy.Candidates(cat, w, cgen) {
				seen[ix.ID()] = true
			}
		}
		return len(seen)
	}
	sizeA, sizeB, union := sizeOf(wA), sizeOf(wB), sizeOf(wA, wB)
	cap := sizeA // each mix must fit on its own, the union must not
	if sizeB > cap {
		cap = sizeB
	}
	if union <= cap {
		t.Skip("workload mixes share all candidates; cannot exercise the rebase")
	}

	d := testDaemonWith(t, func(c *Config) {
		c.HalfLife = 1
		c.MinWeight = 0.4
		c.MaxCandidates = cap
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(wA)}, nil)
	var first RecommendResult
	if resp := post(t, srv, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("first recommend: status %d", resp.StatusCode)
	}
	// Decay mix A out while mix B becomes the live workload.
	for i := 0; i < 6; i++ {
		post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(wB), WeightScale: 100}, nil)
	}
	var second RecommendResult
	resp := post(t, srv, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &second)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend after mix shift: status %d, want 200 via rebase", resp.StatusCode)
	}
	if second.Warm {
		t.Fatal("rebased solve should be cold")
	}
	if second.Candidates > cap {
		t.Fatalf("rebased session still over cap: %d > %d", second.Candidates, cap)
	}
	if d.Snapshot().SessionRebases == 0 {
		t.Fatal("rebase counter never moved")
	}
}

// TestRecommendTimeout503: an expired request deadline answers 503 and
// leaves the daemon healthy for the next caller.
func TestRecommendTimeout503(t *testing.T) {
	d := testDaemonWith(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	gen := workload.Hom(workload.HomConfig{Queries: 6, Seed: 8})
	post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)
	status, body := postErr(t, srv, "/recommend", RecommendOptions{})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if body["error"] == "" {
		t.Fatalf("503 body carries no error: %v", body)
	}

	// The session must not have retained the aborted solve.
	if d.session != nil && d.session.Warm() {
		t.Fatal("aborted solve warmed the session")
	}
}

// TestRecommendCancelledWhileLocked: a caller whose context dies while
// another recommendation holds the session gives up with a context
// error instead of queueing on the semaphore.
func TestRecommendCancelledWhileLocked(t *testing.T) {
	d := testDaemonWith(t, nil)
	gen := workload.Hom(workload.HomConfig{Queries: 4, Seed: 2})
	w, err := workload.Parse(d.cat, renderSQL(gen))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range w.Statements {
		d.stream.Observe(s)
	}

	d.sem <- struct{}{} // simulate a long-running recommendation
	defer func() { <-d.sem }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := d.Recommend(ctx, RecommendOptions{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || ctx.Err() == nil {
			t.Fatalf("want context error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request blocked on the session lock")
	}
}
