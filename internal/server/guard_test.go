package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cophy"
	"repro/internal/engine"
	"repro/internal/tpch"
	"repro/internal/workload"
)

func testDaemonWith(t *testing.T, mutate func(*Config)) *Daemon {
	t.Helper()
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.05})
	eng := engine.New(cat, engine.SystemA())
	cfg := Config{
		Catalog: cat,
		Engine:  eng,
		Advisor: cophy.Options{GapTol: 0.02, RootIters: 160, MaxNodes: 16},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCacheEvictOnStatementDrop: when stream decay evicts a statement,
// its INUM cache entries must be dropped with it — the daemon's memory
// footprint tracks the live workload, not its full history.
func TestCacheEvictOnStatementDrop(t *testing.T) {
	d := testDaemonWith(t, func(c *Config) {
		c.HalfLife = 1 // aggressive decay: one tick halves every weight
		c.MinWeight = 0.4
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Ingest an initial batch and force the cache to be populated.
	gen := workload.Hom(workload.HomConfig{Queries: 8, Seed: 11})
	post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)
	var rec RecommendResult
	if resp := post(t, srv, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("/recommend status %d", resp.StatusCode)
	}
	before := d.ad.Inum.Prepared()
	if before == 0 {
		t.Fatal("recommend left no prepared queries")
	}

	// Keep one statement alive; everything else decays below MinWeight
	// after a few ticks and must take its cache entries along.
	keep := workload.Hom(workload.HomConfig{Queries: 1, Seed: 99})
	for i := 0; i < 6; i++ {
		post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(keep), WeightScale: 100}, nil)
	}
	live := d.stream.Len()
	after := d.ad.Inum.Prepared()
	if after >= before {
		t.Fatalf("cache did not shrink: %d prepared before eviction, %d after (%d live)", before, after, live)
	}
	if d.Snapshot().EvictedEntries == 0 {
		t.Fatal("eviction counter never moved")
	}

	// A fresh recommendation over the survivors still works.
	if resp := post(t, srv, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("/recommend after eviction: status %d", resp.StatusCode)
	}
}

// TestStreamEvictHookUnit pins the hook contract at the stream level:
// called once per evicted statement, with its stable ID, after the
// lock is released.
func TestStreamEvictHookUnit(t *testing.T) {
	st := workload.NewStream(workload.StreamConfig{HalfLife: 1, MinWeight: 0.4})
	var evicted []string
	st.OnEvict(func(id string) {
		evicted = append(evicted, id)
		st.Len() // reentrant call must not deadlock
	})
	gen := workload.Hom(workload.HomConfig{Queries: 3, Seed: 3})
	var ids []string
	for _, s := range gen.Statements {
		s.Weight = 1
		ids = append(ids, st.Observe(s))
	}
	st.Tick() // 0.5 — above threshold
	if len(evicted) != 0 {
		t.Fatalf("premature eviction: %v", evicted)
	}
	st.Tick() // 0.25 — below threshold: all evicted
	if len(evicted) != len(ids) {
		t.Fatalf("evicted %d of %d", len(evicted), len(ids))
	}
	for i, id := range ids {
		if evicted[i] != id {
			t.Fatalf("eviction order/IDs: got %v want %v", evicted, ids)
		}
	}
}

// postErr posts and returns the status code plus the decoded unified
// JSON error body (the shared post helper closes the body on non-200).
func postErr(t *testing.T, srv *httptest.Server, path string, body any) (int, map[string]string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded errorBody
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("%s: error body not JSON: %v", path, err)
	}
	if decoded.Status != resp.StatusCode {
		t.Fatalf("%s: body status %d != HTTP status %d", path, decoded.Status, resp.StatusCode)
	}
	return resp.StatusCode, map[string]string{"error": decoded.Error}
}

// TestRecommendTooManyCandidates: a candidate set beyond the cap is
// 413 with a JSON error body, before any solver work.
func TestRecommendTooManyCandidates(t *testing.T) {
	d := testDaemonWith(t, func(c *Config) { c.MaxCandidates = 2 })
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	gen := workload.Hom(workload.HomConfig{Queries: 12, Seed: 5})
	post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)
	status, body := postErr(t, srv, "/recommend", RecommendOptions{})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", status)
	}
	if body["error"] == "" {
		t.Fatalf("413 body carries no error: %v", body)
	}
	if d.Snapshot().Recommends != 0 {
		t.Fatal("rejected request counted as a recommendation")
	}
}

// TestRecommendCompactsInsteadOfWedging: when the live workload shifts
// so far that the session's accumulated candidates are mostly dead,
// the daemon compacts the session onto the live candidate set — warm,
// multipliers carried by block label — instead of wedging on the cap
// (and instead of the old cold rebase, which forfeited the warm
// state).
func TestRecommendCompactsInsteadOfWedging(t *testing.T) {
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.05})
	wA := workload.Het(workload.HetConfig{Queries: 8, Seed: 5})
	wB := workload.Hom(workload.HomConfig{Queries: 6, Seed: 21})
	cgen := cophy.CGenOptions{Covering: true}
	sizeOf := func(ws ...*workload.Workload) int {
		seen := map[string]bool{}
		for _, w := range ws {
			for _, ix := range cophy.Candidates(cat, w, cgen) {
				seen[ix.ID()] = true
			}
		}
		return len(seen)
	}
	sizeA, sizeB, union := sizeOf(wA), sizeOf(wB), sizeOf(wA, wB)
	cap := sizeA // each mix must fit on its own, the union must not
	if sizeB > cap {
		cap = sizeB
	}
	if union <= cap {
		t.Skip("workload mixes share all candidates; cannot exercise the rebase")
	}

	d := testDaemonWith(t, func(c *Config) {
		c.HalfLife = 1
		c.MinWeight = 0.4
		c.MaxCandidates = cap
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(wA)}, nil)
	var first RecommendResult
	if resp := post(t, srv, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("first recommend: status %d", resp.StatusCode)
	}
	// Decay mix A out while mix B becomes the live workload.
	for i := 0; i < 6; i++ {
		post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(wB), WeightScale: 100}, nil)
	}
	var second RecommendResult
	resp := post(t, srv, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &second)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend after mix shift: status %d, want 200 via compaction", resp.StatusCode)
	}
	if !second.Warm {
		t.Fatal("compacted solve should stay warm (multipliers carried by block label)")
	}
	if second.Candidates > cap {
		t.Fatalf("compacted session still over cap: %d > %d", second.Candidates, cap)
	}
	st := d.Snapshot()
	if st.SessionCompactions == 0 {
		t.Fatal("compaction counter never moved")
	}
	if st.SessionRebases != 0 {
		t.Fatal("compaction should have made the cold rebase unnecessary")
	}
}

// TestRecommendRebasesColdSession: the cold-rebase fallback still
// exists for a session with no warm state to carry — over the cap it
// is dropped for a cold re-session instead of wedging 413.
func TestRecommendRebasesColdSession(t *testing.T) {
	d := testDaemonWith(t, func(c *Config) { c.MaxCandidates = 4096 })
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	gen := workload.Hom(workload.HomConfig{Queries: 6, Seed: 8})
	post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)

	// A cold session (never solved) bloated past the cap with
	// candidates no live statement generates.
	pad := cophy.RandomIndexes(d.cat, d.maxCandidates+8, 3)
	d.session = d.ad.NewSession(d.stream.Snapshot(), pad, cophy.NoConstraints())
	if d.session.Warm() {
		t.Fatal("fixture session unexpectedly warm")
	}

	var rec RecommendResult
	if resp := post(t, srv, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend over bloated cold session: status %d, want 200 via rebase", resp.StatusCode)
	}
	if rec.Warm {
		t.Fatal("rebased solve should be cold")
	}
	if d.Snapshot().SessionRebases == 0 {
		t.Fatal("rebase counter never moved")
	}
}

// TestRecommendTimeout503: an expired request deadline answers 503 and
// leaves the daemon healthy for the next caller.
func TestRecommendTimeout503(t *testing.T) {
	d := testDaemonWith(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	gen := workload.Hom(workload.HomConfig{Queries: 6, Seed: 8})
	post(t, srv, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)
	status, body := postErr(t, srv, "/recommend", RecommendOptions{})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if body["error"] == "" {
		t.Fatalf("503 body carries no error: %v", body)
	}

	// The session must not have retained the aborted solve.
	if d.session != nil && d.session.Warm() {
		t.Fatal("aborted solve warmed the session")
	}
}

// TestRecommendCancelledWhileLocked: a caller whose context dies while
// another recommendation holds the session gives up with a context
// error instead of queueing on the semaphore.
func TestRecommendCancelledWhileLocked(t *testing.T) {
	d := testDaemonWith(t, nil)
	gen := workload.Hom(workload.HomConfig{Queries: 4, Seed: 2})
	w, err := workload.Parse(d.cat, renderSQL(gen))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range w.Statements {
		d.stream.Observe(s)
	}

	d.sem <- struct{}{} // simulate a long-running recommendation
	defer func() { <-d.sem }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := d.Recommend(ctx, RecommendOptions{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || ctx.Err() == nil {
			t.Fatalf("want context error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request blocked on the session lock")
	}
}

// authedPost posts with an optional bearer token and returns status +
// decoded JSON body.
func authedPost(t *testing.T, srv *httptest.Server, path, token string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("%s: body not JSON: %v", path, err)
	}
	return resp.StatusCode, decoded
}

// TestAuthTokenGuardsMutatingEndpoints: with -auth-token set, /ingest,
// /recommend and /snapshot demand the bearer token (401 JSON
// otherwise), while the read-only endpoints stay open.
func TestAuthTokenGuardsMutatingEndpoints(t *testing.T) {
	d := testDaemonWith(t, func(c *Config) { c.AuthToken = "s3cret" })
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	gen := workload.Hom(workload.HomConfig{Queries: 4, Seed: 2})
	body := ingestRequest{SQL: renderSQL(gen)}

	for _, tc := range []struct {
		path  string
		body  any
		token string
		want  int
	}{
		{"/ingest", body, "", http.StatusUnauthorized},
		{"/ingest", body, "wrong", http.StatusUnauthorized},
		{"/ingest", body, "s3cret", http.StatusOK},
		{"/recommend", RecommendOptions{BudgetFraction: 0.5}, "", http.StatusUnauthorized},
		{"/recommend", RecommendOptions{BudgetFraction: 0.5}, "s3cret", http.StatusOK},
		{"/snapshot", struct{}{}, "", http.StatusUnauthorized},
		// /snapshot with the right token still fails 422-free: no data
		// dir is configured, which is the daemon's problem to report,
		// not an auth outcome.
	} {
		status, decoded := authedPost(t, srv, tc.path, tc.token, tc.body)
		if status != tc.want {
			t.Fatalf("%s token=%q: status %d, want %d", tc.path, tc.token, status, tc.want)
		}
		if status == http.StatusUnauthorized {
			if msg, _ := decoded["error"].(string); msg == "" {
				t.Fatalf("%s: 401 without a JSON error body: %v", tc.path, decoded)
			}
			// An unauthorized mutation must not have mutated.
			if d.Snapshot().Ingested != 0 && tc.path == "/ingest" && tc.token != "s3cret" {
				t.Fatal("unauthorized ingest was applied")
			}
		}
	}

	// Read-only endpoints stay open without a token.
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats without token: status %d", resp.StatusCode)
	}
	status, _ := authedPost(t, srv, "/whatif", "", whatIfRequest{SQL: "SELECT l_quantity FROM lineitem;"})
	if status != http.StatusOK {
		t.Fatalf("/whatif without token: status %d", status)
	}
}

// TestAuthDisabledByDefault: with no token configured nothing demands
// authorization — the pre-auth behavior is unchanged.
func TestAuthDisabledByDefault(t *testing.T) {
	d := testDaemonWith(t, nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	gen := workload.Hom(workload.HomConfig{Queries: 2, Seed: 2})
	if status, _ := authedPost(t, srv, "/ingest", "", ingestRequest{SQL: renderSQL(gen)}); status != http.StatusOK {
		t.Fatalf("tokenless daemon rejected ingest: %d", status)
	}
}
