package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cophy"
	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// durableDaemon builds a daemon over a fresh store on dir. Abandoning
// the returned daemon without shutdown or snapshot is the in-process
// equivalent of SIGKILL: the WAL holds whatever was acknowledged, and
// nothing else.
func durableDaemon(t *testing.T, dir string, mutate func(*Config)) *Daemon {
	t.Helper()
	store, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.05})
	cfg := Config{
		Catalog: cat,
		Engine:  engine.New(cat, engine.SystemA()),
		Advisor: cophy.Options{GapTol: 0.02, RootIters: 160, MaxNodes: 16},
		Store:   store,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestKillRestartWarmRecovery is the acceptance pin for the durability
// layer: ingest a workload, recommend (warming the session), die hard
// (no shutdown, no snapshot — WAL only), restart from the data
// directory, and require (a) the stream recovered exactly — statement
// counts, IDs and weights — and (b) the first post-restart /recommend
// solves warm, in fewer solver iterations than the pre-kill cold
// control.
func TestKillRestartWarmRecovery(t *testing.T) {
	dir := t.TempDir()

	// Generation 1: ingest, cold recommend, one delta, warm recommend.
	d1 := durableDaemon(t, dir, nil)
	srv1 := httptest.NewServer(d1.Handler())
	gen := workload.Hom(workload.HomConfig{Queries: 30, Seed: 11})
	post(t, srv1, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)

	var cold RecommendResult
	if resp := post(t, srv1, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &cold); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold recommend: status %d", resp.StatusCode)
	}
	if cold.Warm || cold.Iters < 2 {
		t.Fatalf("cold control unusable: %+v", cold)
	}
	delta := workload.Hom(workload.HomConfig{Queries: 3, Seed: 99})
	post(t, srv1, "/ingest", ingestRequest{SQL: renderSQL(delta)}, nil)

	preKill := d1.stream.Export()
	preStats := d1.Snapshot()
	srv1.Close() // SIGKILL: no shutdown snapshot, no store.Close

	// Generation 2: recover from the same directory.
	d2 := durableDaemon(t, dir, nil)
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()

	st := d2.Snapshot()
	if st.Live != preStats.Live || st.Observed != preStats.Observed || st.Ticks != preStats.Ticks {
		t.Fatalf("stream counts diverged: live %d/%d observed %d/%d ticks %d/%d",
			st.Live, preStats.Live, st.Observed, preStats.Observed, st.Ticks, preStats.Ticks)
	}
	if st.LiveWeight != preStats.LiveWeight {
		t.Fatalf("live weight diverged: %v vs %v", st.LiveWeight, preStats.LiveWeight)
	}
	if st.Ingested != preStats.Ingested {
		t.Fatalf("ingested counter diverged: %d vs %d", st.Ingested, preStats.Ingested)
	}
	recovered := d2.stream.Export()
	if len(recovered.Entries) != len(preKill.Entries) {
		t.Fatalf("recovered %d entries, want %d", len(recovered.Entries), len(preKill.Entries))
	}
	for i := range preKill.Entries {
		if recovered.Entries[i] != preKill.Entries[i] {
			t.Fatalf("entry %d diverged:\n  got  %+v\n  want %+v", i, recovered.Entries[i], preKill.Entries[i])
		}
	}
	if st.Recovery == nil || !st.Recovery.WarmSession || st.Recovery.ReplayedRecords == 0 {
		t.Fatalf("recovery stats: %+v", st.Recovery)
	}
	if st.Recovery.HadSnapshot {
		t.Fatal("no snapshot was ever written; recovery must be WAL-only")
	}

	// The cold-start control: the same recovered workload solved with
	// no warm state, on its own advisor so the daemon's session is
	// untouched. This is what every restart paid before the durability
	// layer existed.
	ctlAd := cophy.NewAdvisor(d2.cat, engine.New(d2.cat, engine.SystemA()), cophy.Options{GapTol: 0.02, RootIters: 160, MaxNodes: 16})
	ctlW := d2.stream.Snapshot()
	ctlCands := cophy.Candidates(d2.cat, ctlW, cophy.CGenOptions{Covering: true})
	ctl, err := ctlAd.NewSession(ctlW, ctlCands, cophy.FractionOfData(d2.cat, 0.5)).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Iters < 2 {
		t.Fatalf("cold control trivial (%d iters)", ctl.Iters)
	}

	// The warm-recovery payoff: the first post-restart recommendation
	// adopts the recovered multipliers and incumbent.
	var warm RecommendResult
	if resp := post(t, srv2, "/recommend", RecommendOptions{BudgetFraction: 0.5}, &warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart recommend: status %d", resp.StatusCode)
	}
	if !warm.Warm {
		t.Fatal("first post-restart recommend reports cold")
	}
	if warm.Iters >= ctl.Iters {
		t.Fatalf("warm recovery did not work: %d iters post-restart vs %d cold control", warm.Iters, ctl.Iters)
	}
	if warm.Infeasible || len(warm.Indexes) == 0 {
		t.Fatalf("post-restart recommendation degenerate: %+v", warm)
	}
	_ = cold // the pre-kill cold solve seeded the session the WAL preserved
}

// TestSnapshotBoundsReplay: after a snapshot, the WAL before it is
// gone, recovery loads the snapshot and replays only the tail, and the
// result is the same state.
func TestSnapshotBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	d1 := durableDaemon(t, dir, nil)
	srv1 := httptest.NewServer(d1.Handler())

	gen := workload.Hom(workload.HomConfig{Queries: 12, Seed: 7})
	post(t, srv1, "/ingest", ingestRequest{SQL: renderSQL(gen)}, nil)

	// Snapshot through the admin endpoint, then a post-snapshot tail.
	var snap SnapshotResult
	if resp := post(t, srv1, "/snapshot", struct{}{}, &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot status %d", resp.StatusCode)
	}
	if snap.Bytes == 0 || snap.Statements == 0 {
		t.Fatalf("snapshot result %+v", snap)
	}
	tail := workload.Hom(workload.HomConfig{Queries: 4, Seed: 21})
	post(t, srv1, "/ingest", ingestRequest{SQL: renderSQL(tail)}, nil)

	preKill := d1.stream.Export()
	srv1.Close()

	d2 := durableDaemon(t, dir, nil)
	st := d2.Snapshot()
	if !st.Recovery.HadSnapshot {
		t.Fatal("recovery ignored the snapshot")
	}
	if st.Recovery.ReplayedRecords != 1 {
		t.Fatalf("replayed %d records, want 1 (the post-snapshot tail)", st.Recovery.ReplayedRecords)
	}
	recovered := d2.stream.Export()
	if len(recovered.Entries) != len(preKill.Entries) {
		t.Fatalf("recovered %d entries, want %d", len(recovered.Entries), len(preKill.Entries))
	}
	for i := range preKill.Entries {
		if recovered.Entries[i] != preKill.Entries[i] {
			t.Fatalf("entry %d diverged after snapshot+tail recovery", i)
		}
	}
}

// TestReplayOverEviction: a statement ingested and then decay-evicted
// before the crash must not resurrect on replay — the WAL replays the
// ticks exactly, so the eviction happens again.
func TestReplayOverEviction(t *testing.T) {
	dir := t.TempDir()
	d1 := durableDaemon(t, dir, func(c *Config) {
		c.HalfLife = 1 // one tick halves every weight
		c.MinWeight = 0.4
	})
	srv1 := httptest.NewServer(d1.Handler())

	doomed := workload.Hom(workload.HomConfig{Queries: 5, Seed: 31})
	post(t, srv1, "/ingest", ingestRequest{SQL: renderSQL(doomed)}, nil)
	var doomedIDs []string
	for _, e := range d1.stream.Export().Entries {
		doomedIDs = append(doomedIDs, e.ID)
	}

	// Keep one statement alive while the first batch decays out.
	keep := workload.Hom(workload.HomConfig{Queries: 1, Seed: 99})
	for i := 0; i < 6; i++ {
		post(t, srv1, "/ingest", ingestRequest{SQL: renderSQL(keep), WeightScale: 100}, nil)
	}
	preKill := d1.stream.Export()
	for _, e := range preKill.Entries {
		for _, id := range doomedIDs {
			if e.ID == id {
				t.Fatalf("fixture broken: %s still live before the kill", id)
			}
		}
	}
	srv1.Close()

	d2 := durableDaemon(t, dir, func(c *Config) {
		c.HalfLife = 1
		c.MinWeight = 0.4
	})
	recovered := d2.stream.Export()
	if len(recovered.Entries) != len(preKill.Entries) {
		t.Fatalf("recovered %d entries, want %d", len(recovered.Entries), len(preKill.Entries))
	}
	for i := range preKill.Entries {
		if recovered.Entries[i] != preKill.Entries[i] {
			t.Fatalf("entry %d diverged", i)
		}
	}
	for _, e := range recovered.Entries {
		for _, id := range doomedIDs {
			if e.ID == id {
				t.Fatalf("evicted statement %s resurrected by replay", id)
			}
		}
	}
	// The ID allocator must not reuse the dead IDs either.
	fresh := workload.Hom(workload.HomConfig{Queries: 1, Seed: 55})
	res, err := d2.Ingest(context.Background(), renderSQL(fresh), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 {
		t.Fatalf("fresh ingest after recovery: %+v", res)
	}
	for _, e := range d2.stream.Export().Entries {
		if e.ID == "" {
			t.Fatal("restored entry without an ID")
		}
	}
}

// TestRecoverStateSchemaSkew: a snapshot whose daemon-level state
// schema differs from the binary's is rejected with an error naming
// both numbers — never silently reinterpreted.
func TestRecoverStateSchemaSkew(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	seq, err := store.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(persistedState{Schema: stateSchema + 7})
	if _, err := store.WriteSnapshot(seq, payload); err != nil {
		t.Fatal(err)
	}
	store.Close()

	store2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.05})
	_, err = New(Config{
		Catalog: cat,
		Engine:  engine.New(cat, engine.SystemA()),
		Store:   store2,
	})
	if err == nil {
		t.Fatal("schema skew accepted")
	}
	if !strings.Contains(err.Error(), "schema") {
		t.Fatalf("skew error does not name the schema: %v", err)
	}
}

// TestSnapshotWhileIngesting: concurrent ingests racing WriteSnapshot
// must neither deadlock nor lose batches — every acknowledged batch is
// either inside the snapshot or in the surviving WAL tail, never both,
// so the recovered observation count matches the acknowledged one.
func TestSnapshotWhileIngesting(t *testing.T) {
	dir := t.TempDir()
	d1 := durableDaemon(t, dir, nil)

	const loops = 8
	done := make(chan int64, 2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			var accepted int64
			for i := 0; i < loops; i++ {
				w := workload.Hom(workload.HomConfig{Queries: 2, Seed: int64(g*1000 + i)})
				res, err := d1.Ingest(context.Background(), renderSQL(w), 0)
				if err != nil {
					t.Error(err)
					break
				}
				accepted += int64(res.Accepted)
			}
			done <- accepted
		}(g)
	}
	var snapErrs int
	for i := 0; i < 4; i++ {
		if _, err := d1.WriteSnapshot(context.Background()); err != nil {
			snapErrs++
		}
	}
	total := <-done + <-done
	if snapErrs > 0 {
		t.Fatalf("%d snapshots failed under concurrent ingestion", snapErrs)
	}
	preKill := d1.stream.Export()

	d2 := durableDaemon(t, dir, nil)
	recovered := d2.stream.Export()
	if recovered.Observed != total {
		t.Fatalf("recovered observation count %d, acknowledged %d", recovered.Observed, total)
	}
	if len(recovered.Entries) != len(preKill.Entries) {
		t.Fatalf("recovered %d entries, want %d", len(recovered.Entries), len(preKill.Entries))
	}
	for i := range preKill.Entries {
		if recovered.Entries[i] != preKill.Entries[i] {
			t.Fatalf("entry %d diverged under snapshot/ingest race", i)
		}
	}
}
