package pareto

import (
	"math"
	"testing"
)

// quadCurve is a synthetic convex trade-off: minimizing λx + (1−λ)y
// over the curve y = (1−x)², x ∈ [0,1].
func quadCurve(lambda float64) Point {
	// d/dx [λx + (1−λ)(1−x)²] = λ − 2(1−λ)(1−x) = 0.
	if lambda >= 1 {
		return Point{X: 0, Y: 1}
	}
	x := 1 - lambda/(2*(1-lambda))
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return Point{X: x, Y: (1 - x) * (1 - x)}
}

func TestChordFindsExtremes(t *testing.T) {
	pts := Chord(quadCurve, 0.01, 20)
	if len(pts) < 3 {
		t.Fatalf("chord returned %d points", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	// λ=1 minimizes X (x=0); λ=0 minimizes Y (y=0).
	if first.X > 1e-9 {
		t.Fatalf("λ=1 extreme wrong: %+v", first)
	}
	if last.Y > 1e-9 {
		t.Fatalf("λ=0 extreme wrong: %+v", last)
	}
}

func TestChordPointsOnCurve(t *testing.T) {
	pts := Chord(quadCurve, 0.005, 30)
	for _, p := range pts {
		want := (1 - p.X) * (1 - p.X)
		if math.Abs(p.Y-want) > 1e-9 {
			t.Fatalf("point off curve: %+v", p)
		}
	}
}

func TestChordRespectsCallBudget(t *testing.T) {
	calls := 0
	counted := func(l float64) Point {
		calls++
		return quadCurve(l)
	}
	Chord(counted, 1e-9, 7)
	if calls > 7 {
		t.Fatalf("chord used %d calls with budget 7", calls)
	}
}

func TestChordRefinesWithTighterEps(t *testing.T) {
	loose := Chord(quadCurve, 0.2, 50)
	tight := Chord(quadCurve, 0.005, 50)
	if len(tight) <= len(loose) {
		t.Fatalf("tighter eps should add points: %d vs %d", len(tight), len(loose))
	}
}

func TestChordDegenerateFlatCurve(t *testing.T) {
	flat := func(lambda float64) Point { return Point{X: 1, Y: 1} }
	pts := Chord(flat, 0.01, 10)
	if len(pts) != 1 {
		t.Fatalf("flat curve should dedupe to one point, got %d", len(pts))
	}
}

func TestDominatedAndFilter(t *testing.T) {
	a := Point{X: 1, Y: 1}
	b := Point{X: 2, Y: 2}
	c := Point{X: 0.5, Y: 3}
	if !Dominated(b, a) {
		t.Fatal("b should be dominated by a")
	}
	if Dominated(a, c) || Dominated(c, a) {
		t.Fatal("a and c are incomparable")
	}
	out := Filter([]Point{a, b, c})
	if len(out) != 2 {
		t.Fatalf("filter kept %d points, want 2", len(out))
	}
}
