// Package pareto implements the Chord algorithm (Daskalakis,
// Diakonikolas, Yannakakis — SODA 2010) for approximating the
// Pareto-optimal curve of a bi-objective minimization problem with few
// scalarized solver invocations. CoPhy uses it to present the
// trade-off curve of a soft constraint — e.g. workload cost versus
// index storage — to the DBA (§4.1 and Appendix D of the paper).
package pareto

import "math"

// Point is one Pareto point: the scalarization weight that produced it
// and its two objective values (both minimized).
type Point struct {
	// Lambda is the weight: the point minimizes Lambda·X + (1−Lambda)·Y.
	Lambda float64
	// X is the first objective (workload cost in CoPhy's use).
	X float64
	// Y is the second objective (index storage).
	Y float64
}

// SolveFunc produces the optimal point of the scalarized objective
// λ·X + (1−λ)·Y.
type SolveFunc func(lambda float64) Point

// Chord approximates the Pareto curve. It solves the two extreme
// scalarizations (λ = 1 minimizes X, λ = 0 minimizes Y) and then
// recursively probes, for each segment between known adjacent points,
// the λ at which both endpoints have equal scalarized value — the
// weight whose supporting line is parallel to the segment. Recursion
// stops when the new point's distance from the segment falls below
// eps (relative to the extreme spans) or maxCalls solver invocations
// were spent. The returned points are sorted by λ descending (cheap X
// first) and are guaranteed to include both extremes; the true curve
// lies within eps of the returned chain.
func Chord(solve SolveFunc, eps float64, maxCalls int) []Point {
	if maxCalls < 2 {
		maxCalls = 2
	}
	calls := 0
	call := func(l float64) Point {
		calls++
		p := solve(l)
		p.Lambda = l
		return p
	}
	a := call(1) // min X
	b := call(0) // min Y

	spanX := math.Abs(a.X-b.X) + 1e-12
	spanY := math.Abs(a.Y-b.Y) + 1e-12

	var out []Point
	out = append(out, a)
	var rec func(p, q Point, depth int)
	rec = func(p, q Point, depth int) {
		if calls >= maxCalls || depth > 12 {
			return
		}
		dx := p.X - q.X
		dy := q.Y - p.Y
		den := dx + dy
		if den == 0 {
			return
		}
		l := dy / den
		if l <= 0 || l >= 1 || math.IsNaN(l) {
			return
		}
		c := call(l)
		// Distance of c from the segment pq, normalized per-axis so
		// the two objectives are comparable.
		d := segmentDistance(p, q, c, spanX, spanY)
		if d < eps {
			return
		}
		rec(p, c, depth+1)
		out = append(out, c)
		rec(c, q, depth+1)
	}
	rec(a, b, 0)
	out = append(out, b)
	return dedupe(out)
}

// segmentDistance returns the normalized perpendicular distance of c
// from the segment pq.
func segmentDistance(p, q, c Point, spanX, spanY float64) float64 {
	px, py := p.X/spanX, p.Y/spanY
	qx, qy := q.X/spanX, q.Y/spanY
	cx, cy := c.X/spanX, c.Y/spanY
	vx, vy := qx-px, qy-py
	wx, wy := cx-px, cy-py
	vv := vx*vx + vy*vy
	if vv == 0 {
		return math.Hypot(wx, wy)
	}
	t := (wx*vx + wy*vy) / vv
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	dx, dy := wx-t*vx, wy-t*vy
	return math.Hypot(dx, dy)
}

// dedupe removes consecutive duplicates (same objective values).
func dedupe(ps []Point) []Point {
	var out []Point
	for _, p := range ps {
		if len(out) > 0 {
			last := out[len(out)-1]
			if math.Abs(last.X-p.X) < 1e-9 && math.Abs(last.Y-p.Y) < 1e-9 {
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

// Dominated reports whether point p is Pareto-dominated by q (q is at
// least as good in both objectives and better in one).
func Dominated(p, q Point) bool {
	return q.X <= p.X && q.Y <= p.Y && (q.X < p.X || q.Y < p.Y)
}

// Filter removes dominated points from a set, preserving order.
func Filter(ps []Point) []Point {
	var out []Point
	for i, p := range ps {
		dom := false
		for j, q := range ps {
			if i != j && Dominated(p, q) {
				dom = true
				break
			}
		}
		if !dom {
			out = append(out, p)
		}
	}
	return out
}
