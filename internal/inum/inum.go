// Package inum implements INUM (Papadomanolakis, Dash, Ailamaki,
// VLDB 2007): a cache of template plans that makes what-if
// optimization orders of magnitude cheaper. For each query, INUM makes
// a few carefully selected optimizer calls (one per interesting-order
// combination), strips the access-method leaves out of the returned
// plans, and caches the resulting template plans. Evaluating
// cost(q, X) for an arbitrary configuration X then requires no
// optimizer call at all: each template contributes its internal plan
// cost β plus, per slot, the cheapest compatible access cost γ among
// the indexes of X — the linearly composable form of Definition 1 in
// the CoPhy paper.
package inum

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/workload"
)

// SlotMode distinguishes the two ways a template accesses a table.
type SlotMode int

const (
	// SlotScan is a single-pass access, optionally constrained to
	// deliver a sort order.
	SlotScan SlotMode = iota
	// SlotLookup is a repeated point-lookup access driven by a
	// nested-loop join; its γ scales with the probe count.
	SlotLookup
)

// Slot is one access-method hole of a template plan.
type Slot struct {
	// Table is the accessed table.
	Table string `json:"table"`
	// Mode is the access style.
	Mode SlotMode `json:"mode"`
	// RequiredOrder is the qualified sort order the slot must deliver
	// (scan slots only; empty means any access works).
	RequiredOrder []string `json:"required_order,omitempty"`
	// JoinCol is the probed column (lookup slots only).
	JoinCol string `json:"join_col,omitempty"`
	// Lookups is the probe multiplicity (lookup slots only).
	Lookups float64 `json:"lookups,omitempty"`
	// NeedCols are the columns of Table the query touches; they decide
	// whether an index is covering in this slot.
	NeedCols []string `json:"need_cols,omitempty"`
}

// Template is one cached template plan: the internal (non-leaf) cost β
// plus the slots that access methods plug into. Templates are immutable
// once published and may be shared by every prepared statement of the
// same shape; the exported fields round-trip through JSON for the
// snapshot's plan payload.
type Template struct {
	// Internal is β: the execution cost of the internal operators.
	Internal float64 `json:"internal"`
	// Slots lists the access-method holes, one per referenced table.
	Slots []Slot `json:"slots"`

	// sig memoizes signature(); templates are immutable once built.
	sig string
}

// signature canonically identifies the template's slot structure.
func (t *Template) signature() string {
	if t.sig == "" {
		t.sig = string(t.appendSig(make([]byte, 0, 128)))
	}
	return t.sig
}

// appendSig appends the signature bytes to buf, letting callers that
// only compare signatures avoid the string conversion.
func (t *Template) appendSig(buf []byte) []byte {
	// Slots hold one table each, so ordering by table canonicalizes the
	// signature; the slot count is tiny, so selection-order directly.
	var idx [16]int
	order := idx[:0]
	for i := range t.Slots {
		order = append(order, i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && t.Slots[order[j]].Table < t.Slots[order[j-1]].Table; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for k, i := range order {
		if k > 0 {
			buf = append(buf, ';')
		}
		s := &t.Slots[i]
		buf = append(buf, s.Table...)
		buf = append(buf, '/')
		buf = strconv.AppendInt(buf, int64(s.Mode), 10)
		buf = append(buf, '/')
		for j, c := range s.RequiredOrder {
			if j > 0 {
				buf = append(buf, '+')
			}
			buf = append(buf, c...)
		}
		buf = append(buf, '/')
		buf = append(buf, s.JoinCol...)
		buf = append(buf, '/')
		buf = strconv.AppendFloat(buf, s.Lookups, 'f', 0, 64)
	}
	buf = append(buf, '|')
	buf = strconv.AppendFloat(buf, t.Internal, 'f', 3, 64)
	return buf
}

// QueryInfo is the INUM cache entry for one query: its template plans
// TPlans(q) plus memoized γ values.
type QueryInfo struct {
	Query     *workload.Query
	Templates []*Template

	mu    sync.Mutex
	gamma map[gammaKey]float64
}

type gammaKey struct {
	tmpl, slot int
	index      string // canonical index ID; "" for I∅
}

// Cache is the INUM layer over one engine. It is safe for concurrent
// use: the query map is striped into shards keyed by a hash of the
// query ID, so concurrent PrepareQuery/Info calls on different queries
// do not serialize on one lock.
//
// The cache is two-level. The outer level maps statement IDs to
// QueryInfo entries (per-statement γ memos). The inner level maps shape
// fingerprints (engine.ShapeFingerprint) to derived template sets, so
// statements that differ only in constants the histograms price
// identically share one derivation: the second and later statements of
// a shape skip every what-if optimizer call.
type Cache struct {
	Eng *engine.Engine

	shards      []cacheShard
	shapeShards []shapeShard

	shapeHits   atomic.Int64
	shapeMisses atomic.Int64

	// statMu guards the prep counters below.
	statMu sync.Mutex
	// PrepCalls counts the what-if optimizations spent preparing
	// template plans (the "INUM time" component of the paper's
	// breakdowns). Read it only after concurrent preparation settles.
	PrepCalls int64
	// PrepDuration is the wall time spent in Prepare.
	PrepDuration time.Duration

	// MaxTemplates caps K_q per query.
	MaxTemplates int
	// MaxCombos caps the number of interesting-order combinations
	// enumerated per query.
	MaxCombos int
}

// cacheShard is one stripe of the query map: mutex (8) + map header
// (8) + pad = 64 bytes, so neighboring stripes never share a cache
// line.
type cacheShard struct {
	mu      sync.Mutex
	queries map[string]*QueryInfo
	_       [48]byte
}

// shapeShard is one stripe of the shape → templates map. Entries are
// inserted before derivation starts (singleflight): the first goroutine
// to claim a fingerprint derives the templates while later arrivals
// block on ready, so a burst of same-shape statements costs exactly one
// set of optimizer calls.
type shapeShard struct {
	mu     sync.Mutex
	shapes map[string]*shapeEntry
	// order tracks insertion order for FIFO eviction.
	order []string
	_     [24]byte
}

// shapeEntry is one shape-cache slot. templates is written once, before
// ready closes, and never mutated after.
type shapeEntry struct {
	ready     chan struct{}
	templates []*Template
}

// shapeCapPerShard bounds each stripe (so the whole cache holds at most
// shards×cap shapes, ~4096 at the default stripe count). Eviction is
// FIFO and skips entries still being derived, so a long-running
// derivation can never be yanked out from under its waiters.
const shapeCapPerShard = 64

// defaultShards is the stripe count: comfortably above typical core
// counts so cache-hit lookups under a parallel what-if load rarely
// collide. Must be a power of two.
const defaultShards = 64

// New returns an empty INUM cache over the engine.
func New(eng *engine.Engine) *Cache {
	return newWithShards(eng, defaultShards)
}

// newWithShards builds a cache with an explicit stripe count (a power
// of two). The single-stripe form is the pre-sharding cache, retained
// so BenchmarkCachePrepareParallel can measure what the striping buys.
func newWithShards(eng *engine.Engine, n int) *Cache {
	if n <= 0 || n&(n-1) != 0 {
		panic("inum: shard count must be a positive power of two")
	}
	c := &Cache{
		Eng:          eng,
		shards:       make([]cacheShard, n),
		shapeShards:  make([]shapeShard, n),
		MaxTemplates: 10,
		MaxCombos:    48,
	}
	for i := range c.shards {
		c.shards[i].queries = make(map[string]*QueryInfo)
		c.shapeShards[i].shapes = make(map[string]*shapeEntry)
	}
	return c
}

// PrepStats returns the prep counters under their lock — the safe way
// to read them while preparation may still be running elsewhere.
func (c *Cache) PrepStats() (calls int64, dur time.Duration) {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.PrepCalls, c.PrepDuration
}

// Prepared returns the number of cached queries across all shards.
func (c *Cache) Prepared() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.queries)
		sh.mu.Unlock()
	}
	return n
}

// shard returns the stripe owning the query ID (FNV-1a hash).
func (c *Cache) shard(id string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &c.shards[h&uint64(len(c.shards)-1)]
}

// shapeShardOf returns the stripe owning the fingerprint (FNV-1a).
func (c *Cache) shapeShardOf(fp string) *shapeShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(fp); i++ {
		h ^= uint64(fp[i])
		h *= prime64
	}
	return &c.shapeShards[h&uint64(len(c.shapeShards)-1)]
}

// ShapeStats returns the shape-cache hit/miss counters. A hit means a
// statement's entire template derivation was skipped.
func (c *Cache) ShapeStats() (hits, misses int64) {
	return c.shapeHits.Load(), c.shapeMisses.Load()
}

// ShapeCount returns the number of fully derived shapes cached across
// all stripes.
func (c *Cache) ShapeCount() int {
	n := 0
	for i := range c.shapeShards {
		ss := &c.shapeShards[i]
		ss.mu.Lock()
		for _, en := range ss.shapes {
			select {
			case <-en.ready:
				n++
			default:
			}
		}
		ss.mu.Unlock()
	}
	return n
}

// PrepareCtx is Prepare under the context's trace: the whole
// preparation fan-out lands in one "inum.prepare" span so request
// breakdowns show what template derivation costs (and how little it
// costs once the shape cache is warm).
func (c *Cache) PrepareCtx(ctx context.Context, w *workload.Workload) {
	defer obs.TraceFrom(ctx).StartSpan("inum.prepare")()
	c.Prepare(w)
}

// Prepare populates the cache for every query of the workload
// (SELECT statements and update query shells), in parallel.
func (c *Cache) Prepare(w *workload.Workload) {
	start := time.Now()
	queries := w.Queries()
	par.For(len(queries), 0, func(i int) {
		c.PrepareQuery(queries[i].Query)
	})
	c.statMu.Lock()
	c.PrepDuration += time.Since(start)
	c.statMu.Unlock()
}

// PrepareQuery builds (or returns) the template plans for one query.
// Template derivation is shared through the shape cache: only the first
// statement of each shape pays the optimizer calls.
func (c *Cache) PrepareQuery(q *workload.Query) *QueryInfo {
	sh := c.shard(q.ID)
	sh.mu.Lock()
	if qi, ok := sh.queries[q.ID]; ok {
		sh.mu.Unlock()
		return qi
	}
	sh.mu.Unlock()

	qi := &QueryInfo{
		Query:     q,
		Templates: c.templatesForShape(q),
		gamma:     make(map[gammaKey]float64),
	}

	sh.mu.Lock()
	if prior, ok := sh.queries[q.ID]; ok {
		sh.mu.Unlock()
		return prior
	}
	sh.queries[q.ID] = qi
	sh.mu.Unlock()
	return qi
}

// templatesForShape returns the template set for the query's shape,
// deriving it on first sight. Concurrent same-shape callers
// single-flight: one derives, the rest wait on the entry.
func (c *Cache) templatesForShape(q *workload.Query) []*Template {
	fp := c.Eng.ShapeFingerprint(q)
	ss := c.shapeShardOf(fp)
	ss.mu.Lock()
	if en, ok := ss.shapes[fp]; ok {
		ss.mu.Unlock()
		<-en.ready
		c.shapeHits.Add(1)
		return en.templates
	}
	en := &shapeEntry{ready: make(chan struct{})}
	ss.insert(fp, en)
	ss.mu.Unlock()
	c.shapeMisses.Add(1)

	// Close ready even if derivation panics, so same-shape waiters are
	// never stranded on a dead entry.
	defer close(en.ready)
	en.templates = c.buildTemplates(q)
	return en.templates
}

// insert adds an entry under the shard lock, evicting the oldest
// completed entries FIFO when the stripe is over cap.
func (ss *shapeShard) insert(fp string, en *shapeEntry) {
	for len(ss.shapes) >= shapeCapPerShard && len(ss.order) > 0 {
		evicted := false
		for i, old := range ss.order {
			prior, ok := ss.shapes[old]
			if !ok {
				ss.order = append(ss.order[:i], ss.order[i+1:]...)
				evicted = true
				break
			}
			select {
			case <-prior.ready:
				delete(ss.shapes, old)
				ss.order = append(ss.order[:i], ss.order[i+1:]...)
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			// Every resident entry is mid-derivation; grow past cap
			// rather than evict one with live waiters.
			break
		}
	}
	ss.shapes[fp] = en
	ss.order = append(ss.order, fp)
}

// ShapeRecord is the serialized form of one shape-cache entry, the unit
// of the snapshot's plan payload.
type ShapeRecord struct {
	Fingerprint string      `json:"fingerprint"`
	Templates   []*Template `json:"templates"`
}

// ExportShapes returns every fully derived shape, sorted by fingerprint
// so snapshots are byte-stable across runs.
func (c *Cache) ExportShapes() []ShapeRecord {
	var out []ShapeRecord
	for i := range c.shapeShards {
		ss := &c.shapeShards[i]
		ss.mu.Lock()
		for fp, en := range ss.shapes {
			select {
			case <-en.ready:
				if en.templates != nil {
					out = append(out, ShapeRecord{Fingerprint: fp, Templates: en.templates})
				}
			default:
			}
		}
		ss.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// ImportShapes seeds the shape cache from persisted records (the warm
// half of restart recovery: statements whose shapes were imported skip
// every optimizer call on their first Prepare). Existing entries win
// over imports; the count of newly seeded shapes is returned.
func (c *Cache) ImportShapes(recs []ShapeRecord) int {
	n := 0
	for _, r := range recs {
		if r.Fingerprint == "" || len(r.Templates) == 0 {
			continue
		}
		// Precompute signatures before publication: sig is memoized
		// lazily and concurrent first calls would race.
		for _, t := range r.Templates {
			t.signature()
		}
		ss := c.shapeShardOf(r.Fingerprint)
		ss.mu.Lock()
		if _, ok := ss.shapes[r.Fingerprint]; !ok {
			en := &shapeEntry{ready: make(chan struct{}), templates: r.Templates}
			close(en.ready)
			ss.insert(r.Fingerprint, en)
			n++
		}
		ss.mu.Unlock()
	}
	return n
}

// Info returns the cache entry for a prepared query, or nil.
func (c *Cache) Info(q *workload.Query) *QueryInfo {
	sh := c.shard(q.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.queries[q.ID]
}

// Evict drops the cache entries of the statement with the given ID:
// the query entry itself and, for updates, the "<id>#shell" entry its
// query shell was prepared under. It returns the number of entries
// removed. Wired to workload.Stream's eviction hook, this keeps a
// long-lived daemon's INUM footprint proportional to the live workload
// instead of to everything it has ever seen.
func (c *Cache) Evict(id string) int {
	removed := 0
	for _, key := range [...]string{id, id + "#shell"} {
		sh := c.shard(key)
		sh.mu.Lock()
		if _, ok := sh.queries[key]; ok {
			delete(sh.queries, key)
			removed++
		}
		sh.mu.Unlock()
	}
	return removed
}

// interestingOrders returns the per-table candidate orders of a query:
// single join columns, the group-by prefix and the order-by prefix
// restricted to the table.
func interestingOrders(q *workload.Query, table string) [][]string {
	var out [][]string
	seen := map[string]bool{}
	add := func(order []string) {
		if len(order) == 0 {
			return
		}
		k := strings.Join(order, ",")
		if !seen[k] {
			seen[k] = true
			out = append(out, order)
		}
	}
	for _, jc := range q.JoinColsOf(table) {
		add([]string{table + "." + jc})
	}
	var group []string
	for _, g := range q.GroupBy {
		if g.Table != table {
			break
		}
		group = append(group, g.String())
	}
	add(group)
	var ord []string
	for _, o := range q.OrderBy {
		if o.Table != table {
			break
		}
		ord = append(ord, o.String())
	}
	add(ord)
	return out
}

// buildTemplates enumerates interesting-order combinations, optimizes
// each with forced orders, and extracts the Pareto set of templates.
// The result depends only on the query's shape fingerprint, so it is
// cached per shape and shared across same-shape statements.
func (c *Cache) buildTemplates(q *workload.Query) []*Template {
	qi := &QueryInfo{Query: q}

	needCols := make(map[string][]string, len(q.Tables))
	for _, t := range q.Tables {
		needCols[t] = q.ColumnsOf(t)
	}

	// Synthetic configuration for template extraction: for every
	// interesting order a covering hypothetical index, so the
	// optimizer can exhibit order-exploiting plan shapes. This mirrors
	// INUM's "carefully selected what-if calls".
	perTable := make([][][]string, len(q.Tables))
	synth := engine.NewConfig()
	for i, t := range q.Tables {
		orders := interestingOrders(q, t)
		if len(orders) > 3 {
			orders = orders[:3]
		}
		perTable[i] = append([][]string{nil}, orders...)
		for _, o := range orders {
			key := make([]string, len(o))
			for j, qc := range o {
				key[j] = strings.TrimPrefix(qc, t+".")
			}
			synth.Add(&catalog.Index{Table: t, Key: key, Include: remainder(needCols[t], key)})
		}
		// A plain covering index encourages lookup/covering shapes.
		if jcs := q.JoinColsOf(t); len(jcs) > 0 {
			synth.Add(&catalog.Index{Table: t, Key: []string{jcs[0]}, Include: remainder(needCols[t], []string{jcs[0]})})
		}
	}

	// Extraction scratch: most combos yield a template whose signature
	// was already seen, so plans are extracted into one reusable holder
	// and only novel templates are cloned into the cache.
	var (
		calls     int64
		scratch   Template
		leavesBuf []*engine.PlanNode
		sigBuf    []byte
	)
	addPlan := func(p *engine.Plan, forced map[string][]string) {
		if p == nil {
			return
		}
		leavesBuf = extractInto(&scratch, leavesBuf[:0], p, forced, needCols)
		sigBuf = qi.addTemplate(&scratch, sigBuf[:0])
	}

	// Fallback template: unordered scans only; instantiable by the
	// empty atomic configuration, guaranteeing cost(q, X) < ∞ for
	// every X.
	fallback := make(map[string][]string, len(q.Tables))
	for _, t := range q.Tables {
		fallback[t] = []string{}
	}
	if p, err := c.Eng.TemplatePlan(q, engine.NewConfig(), fallback); err == nil {
		calls++
		addPlan(p, fallback)
	}

	// All remaining calls optimize the same query under the same
	// synthetic configuration with only the forced map varying, so they
	// share one derivation context (access paths, join conditions,
	// lookup leaves and sort wrappers are computed once).
	tctx := c.Eng.NewTemplateCtx(q, synth)
	defer tctx.Close()

	// Unconstrained call under the synthetic configuration.
	if p, err := tctx.TemplatePlan(nil); err == nil {
		calls++
		addPlan(p, nil)
	}

	// Mixed-radix walk over order combinations. The forced map is
	// reused across iterations; extract retains only the forced order
	// slices, never the map itself.
	combos := 1
	for _, opts := range perTable {
		combos *= len(opts)
	}
	limit := c.MaxCombos
	forced := make(map[string][]string, len(q.Tables))
	for ci := 1; ci < combos && ci <= limit; ci++ {
		clear(forced)
		rest := ci
		for i, opts := range perTable {
			choice := rest % len(opts)
			rest /= len(opts)
			if choice > 0 {
				forced[q.Tables[i]] = opts[choice]
			}
		}
		if len(forced) == 0 {
			continue
		}
		p, err := tctx.TemplatePlan(forced)
		calls++
		if err != nil {
			continue
		}
		addPlan(p, forced)
	}

	qi.prune(c.MaxTemplates)

	c.statMu.Lock()
	c.PrepCalls += calls
	c.statMu.Unlock()
	return qi.Templates
}

// remainder returns cols minus the key columns.
func remainder(cols, key []string) []string {
	var out []string
	for _, col := range cols {
		inKey := false
		for _, k := range key {
			if k == col {
				inKey = true
				break
			}
		}
		if !inKey {
			out = append(out, col)
		}
	}
	return out
}

// extractInto converts a forced physical plan into a template held in
// t, reusing t's slot capacity and the caller's leaves scratch: β is
// the internal cost; each leaf becomes a slot whose order requirement
// is the forced order of its table (not the incidental order of the
// index the optimizer happened to pick). It returns the leaves scratch
// for reuse.
func extractInto(t *Template, leaves []*engine.PlanNode, p *engine.Plan, forced map[string][]string, needCols map[string][]string) []*engine.PlanNode {
	leaves = p.Root.Leaves(leaves)
	var leafCost float64
	for _, l := range leaves {
		leafCost += l.SelfCost
	}
	t.Internal = p.Root.Cost - leafCost
	t.Slots = t.Slots[:0]
	t.sig = ""
	for _, leaf := range leaves {
		s := Slot{Table: leaf.Table, NeedCols: needCols[leaf.Table]}
		if leaf.Op == engine.OpIndexLookup {
			s.Mode = SlotLookup
			s.JoinCol = leaf.LookupCol
			s.Lookups = leaf.Lookups
		} else {
			s.Mode = SlotScan
			if req, ok := forced[leaf.Table]; ok && len(req) > 0 {
				s.RequiredOrder = req
			}
		}
		t.Slots = append(t.Slots, s)
	}
	return leaves
}

// addTemplate inserts a copy of the (possibly scratch) template unless
// an identical signature exists. buf is signature scratch, returned for
// reuse; the duplicate check compares bytes so rejected templates cost
// no allocation at all.
func (qi *QueryInfo) addTemplate(t *Template, buf []byte) []byte {
	buf = t.appendSig(buf)
	for _, prior := range qi.Templates {
		if prior.signature() == string(buf) {
			return buf
		}
	}
	qi.Templates = append(qi.Templates, &Template{
		Internal: t.Internal,
		Slots:    append([]Slot(nil), t.Slots...),
		sig:      string(buf),
	})
	return buf
}

// prune drops dominated templates and caps the count at maxK, keeping
// the template set sorted by β. A template T1 is dominated by T2 when
// T2's internal cost is no higher and every T1 slot is at least as
// constrained as the matching T2 slot (same mode and join column,
// required order extends T2's).
func (qi *QueryInfo) prune(maxK int) {
	sort.Slice(qi.Templates, func(i, j int) bool { return qi.Templates[i].Internal < qi.Templates[j].Internal })
	var kept []*Template
	for _, t := range qi.Templates {
		dominated := false
		for _, winner := range kept {
			if dominates(winner, t) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, t)
		}
	}
	// Always retain the fallback (all-scan, no-order) template if
	// present, even beyond the cap.
	if len(kept) > maxK {
		var fallback *Template
		for _, t := range kept[maxK:] {
			if t.isFallback() {
				fallback = t
				break
			}
		}
		kept = kept[:maxK]
		if fallback != nil {
			hasFallback := false
			for _, t := range kept {
				if t.isFallback() {
					hasFallback = true
					break
				}
			}
			if !hasFallback {
				kept[len(kept)-1] = fallback
			}
		}
	}
	qi.Templates = kept
}

// isFallback reports whether every slot is an unconstrained scan.
func (t *Template) isFallback() bool {
	for _, s := range t.Slots {
		if s.Mode != SlotScan || len(s.RequiredOrder) > 0 {
			return false
		}
	}
	return true
}

// dominates reports whether template a makes template b redundant.
func dominates(a, b *Template) bool {
	if a.Internal > b.Internal*1.0001+1e-9 {
		return false
	}
	if len(a.Slots) != len(b.Slots) {
		return false
	}
	for i := range a.Slots {
		sa := &a.Slots[i]
		// Slot counts are tiny (one per referenced table), so a linear
		// scan beats building a lookup map per comparison.
		var sb *Slot
		for j := range b.Slots {
			if b.Slots[j].Table == sa.Table {
				sb = &b.Slots[j]
				break
			}
		}
		if sb == nil || sa.Mode != sb.Mode {
			return false
		}
		switch sa.Mode {
		case SlotLookup:
			if sa.JoinCol != sb.JoinCol || sa.Lookups > sb.Lookups*1.0001 {
				return false
			}
		case SlotScan:
			// a's requirement must be a prefix of b's (weaker or equal).
			if len(sa.RequiredOrder) > len(sb.RequiredOrder) {
				return false
			}
			for j, c := range sa.RequiredOrder {
				if sb.RequiredOrder[j] != c {
					return false
				}
			}
		}
	}
	return true
}

// Gamma returns γ_{qkia}: the access cost of implementing slot si of
// template ti with index ix (nil means I∅, the heap). The boolean is
// false when the access method cannot implement the slot (γ = ∞).
// Results are memoized per query.
func (c *Cache) Gamma(qi *QueryInfo, ti, si int, ix *catalog.Index) (float64, bool) {
	key := gammaKey{tmpl: ti, slot: si}
	if ix != nil {
		key.index = ix.ID()
	}
	qi.mu.Lock()
	if v, ok := qi.gamma[key]; ok {
		qi.mu.Unlock()
		return v, !math.IsInf(v, 1)
	}
	qi.mu.Unlock()

	s := &qi.Templates[ti].Slots[si]
	var v float64
	var ok bool
	switch s.Mode {
	case SlotScan:
		v, ok = c.Eng.SlotScanCost(qi.Query, s.Table, ix, s.RequiredOrder, s.NeedCols)
	case SlotLookup:
		v, ok = c.Eng.SlotLookupCost(qi.Query, s.Table, ix, s.JoinCol, s.Lookups, s.NeedCols)
	}
	if !ok {
		v = math.Inf(1)
	}
	qi.mu.Lock()
	qi.gamma[key] = v
	qi.mu.Unlock()
	return v, ok
}

// Cost returns the INUM approximation of cost(q, X): the minimum over
// template plans and atomic configurations of the instantiated plan
// cost. It never calls the what-if optimizer.
func (c *Cache) Cost(q *workload.Query, cfg *engine.Config) (float64, error) {
	qi := c.PrepareQuery(q)
	if len(qi.Templates) == 0 {
		return 0, fmt.Errorf("inum: no templates for query %s", q.ID)
	}
	best := math.Inf(1)
	for ti, t := range qi.Templates {
		total := t.Internal
		feasible := true
		for si := range t.Slots {
			s := &t.Slots[si]
			slotBest := math.Inf(1)
			if g, ok := c.Gamma(qi, ti, si, nil); ok {
				slotBest = g
			}
			for _, ix := range cfg.OnTable(s.Table) {
				if g, ok := c.Gamma(qi, ti, si, ix); ok && g < slotBest {
					slotBest = g
				}
			}
			if math.IsInf(slotBest, 1) {
				feasible = false
				break
			}
			total += slotBest
		}
		if feasible && total < best {
			best = total
		}
	}
	if math.IsInf(best, 1) {
		return 0, fmt.Errorf("inum: no instantiable template for query %s", q.ID)
	}
	return best, nil
}

// StatementCost mirrors engine.StatementCost but uses the INUM
// approximation for the query part.
func (c *Cache) StatementCost(s *workload.Statement, cfg *engine.Config) (float64, error) {
	if s.Query != nil {
		return c.Cost(s.Query, cfg)
	}
	u := s.Update
	cost, err := c.Cost(u.Shell(), cfg)
	if err != nil {
		return 0, err
	}
	for _, ix := range cfg.Indexes() {
		cost += c.Eng.UpdateCost(u, ix)
	}
	return cost + c.Eng.BaseUpdateCost(u), nil
}

// WorkloadCost returns Σ f_q · cost(q, X) using the INUM
// approximation throughout.
func (c *Cache) WorkloadCost(w *workload.Workload, cfg *engine.Config) (float64, error) {
	var sum float64
	for _, s := range w.Statements {
		v, err := c.StatementCost(s, cfg)
		if err != nil {
			return 0, err
		}
		sum += s.Weight * v
	}
	return sum, nil
}
