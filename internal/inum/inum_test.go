package inum

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/tpch"
	"repro/internal/workload"
)

func testSetup(t *testing.T) (*engine.Engine, *Cache, *engine.Config) {
	t.Helper()
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.05})
	eng := engine.New(cat, engine.SystemA())
	return eng, New(eng), engine.NewConfig(tpch.BaselineIndexes(cat)...)
}

func ref(tb, c string) catalog.ColumnRef { return catalog.ColumnRef{Table: tb, Column: c} }

func TestPrepareBuildsTemplates(t *testing.T) {
	_, cache, _ := testSetup(t)
	w := workload.Hom(workload.HomConfig{Queries: 15, Seed: 20})
	cache.Prepare(w)
	for _, s := range w.Queries() {
		qi := cache.Info(s.Query)
		if qi == nil {
			t.Fatalf("%s not prepared", s.Query.ID)
		}
		if len(qi.Templates) == 0 {
			t.Fatalf("%s has no templates", s.Query.ID)
		}
		if len(qi.Templates) > cache.MaxTemplates {
			t.Fatalf("%s has %d templates, cap %d", s.Query.ID, len(qi.Templates), cache.MaxTemplates)
		}
		// One template must be instantiable by the empty configuration.
		hasFallback := false
		for _, tpl := range qi.Templates {
			if tpl.isFallback() {
				hasFallback = true
			}
			if len(tpl.Slots) != len(s.Query.Tables) {
				t.Fatalf("%s: template has %d slots for %d tables", s.Query.ID, len(tpl.Slots), len(s.Query.Tables))
			}
		}
		if !hasFallback {
			t.Fatalf("%s lacks a fallback template", s.Query.ID)
		}
	}
	if cache.PrepCalls == 0 {
		t.Fatal("Prepare should record optimizer calls")
	}
}

func TestCostNeverBelowOptimal(t *testing.T) {
	// INUM restricts the plan space to cached templates, so its cost
	// approximation is an upper bound on the optimizer's true optimum.
	eng, cache, base := testSetup(t)
	w := workload.Hom(workload.HomConfig{Queries: 30, Seed: 21})
	cache.Prepare(w)
	cfgs := []*engine.Config{
		base,
		base.Union(engine.NewConfig(&catalog.Index{Table: "lineitem", Key: []string{"l_shipdate"}, Include: []string{"l_extendedprice", "l_discount"}})),
		base.Union(engine.NewConfig(
			&catalog.Index{Table: "orders", Key: []string{"o_orderdate"}},
			&catalog.Index{Table: "customer", Key: []string{"c_mktsegment"}},
		)),
	}
	for _, s := range w.Queries() {
		for _, cfg := range cfgs {
			inumCost, err := cache.Cost(s.Query, cfg)
			if err != nil {
				t.Fatalf("%s: %v", s.Query.ID, err)
			}
			opt, err := eng.WhatIfCost(s.Query, cfg)
			if err != nil {
				t.Fatalf("%s: %v", s.Query.ID, err)
			}
			if inumCost < opt*(1-1e-6) {
				t.Fatalf("%s: INUM cost %v below optimal %v", s.Query.ID, inumCost, opt)
			}
			if inumCost > opt*25 {
				t.Fatalf("%s: INUM cost %v wildly above optimal %v", s.Query.ID, inumCost, opt)
			}
		}
	}
}

func TestCostImprovesWithIndexes(t *testing.T) {
	_, cache, base := testSetup(t)
	q := &workload.Query{
		ID:     "i-sel",
		Tables: []string{"lineitem"},
		Select: []catalog.ColumnRef{ref("lineitem", "l_extendedprice")},
		Preds: []workload.Predicate{
			{Col: ref("lineitem", "l_shipdate"), Op: workload.OpRange, Lo: 0.3, Hi: 0.31},
		},
	}
	before, err := cache.Cost(q, base)
	if err != nil {
		t.Fatal(err)
	}
	ix := &catalog.Index{Table: "lineitem", Key: []string{"l_shipdate"}, Include: []string{"l_extendedprice"}}
	after, err := cache.Cost(q, base.Union(engine.NewConfig(ix)))
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("index should reduce INUM cost: %v -> %v", before, after)
	}
}

func TestCostMonotoneInConfig(t *testing.T) {
	// Property: adding indexes never increases the INUM cost (min over
	// a larger atomic-configuration set).
	_, cache, base := testSetup(t)
	w := workload.Hom(workload.HomConfig{Queries: 15, Seed: 22})
	cache.Prepare(w)
	extra := []*catalog.Index{
		{Table: "lineitem", Key: []string{"l_shipdate"}},
		{Table: "lineitem", Key: []string{"l_partkey"}, Include: []string{"l_extendedprice"}},
		{Table: "orders", Key: []string{"o_orderdate", "o_custkey"}},
		{Table: "part", Key: []string{"p_brand", "p_size"}},
	}
	for _, s := range w.Queries() {
		cfg := base
		prev := math.Inf(1)
		for i := 0; i <= len(extra); i++ {
			if i > 0 {
				cfg = cfg.Union(engine.NewConfig(extra[i-1]))
			}
			cost, err := cache.Cost(s.Query, cfg)
			if err != nil {
				t.Fatalf("%s: %v", s.Query.ID, err)
			}
			if cost > prev*1.000001 {
				t.Fatalf("%s: cost grew from %v to %v when adding index", s.Query.ID, prev, cost)
			}
			prev = cost
		}
	}
}

func TestLinearComposability(t *testing.T) {
	// Definition 1: cost(q, X) computed by INUM equals the minimum
	// over (k, A) of β_qk + Σ_i γ_qkia with A ranging over atomic
	// configurations of X. We verify by brute-force enumeration of
	// atomic configurations.
	_, cache, base := testSetup(t)
	q := &workload.Query{
		ID:     "i-join",
		Tables: []string{"orders", "lineitem"},
		Select: []catalog.ColumnRef{ref("lineitem", "l_extendedprice"), ref("orders", "o_orderdate")},
		Joins:  []workload.Join{{Left: ref("lineitem", "l_orderkey"), Right: ref("orders", "o_orderkey")}},
		Preds: []workload.Predicate{
			{Col: ref("orders", "o_orderdate"), Op: workload.OpRange, Lo: 0.2, Hi: 0.24},
		},
	}
	ixs := []*catalog.Index{
		{Table: "orders", Key: []string{"o_orderdate"}},
		{Table: "lineitem", Key: []string{"l_orderkey"}, Include: []string{"l_extendedprice"}},
	}
	cfg := base.Union(engine.NewConfig(ixs...))
	got, err := cache.Cost(q, cfg)
	if err != nil {
		t.Fatal(err)
	}

	qi := cache.Info(q)
	// Brute force: per template, independent slot minima equal the
	// minimum over atomic configurations because slots touch distinct
	// tables.
	want := math.Inf(1)
	for ti, tpl := range qi.Templates {
		total := tpl.Internal
		ok := true
		for si := range tpl.Slots {
			slotBest := math.Inf(1)
			if g, feasible := cache.Gamma(qi, ti, si, nil); feasible {
				slotBest = g
			}
			for _, ix := range cfg.OnTable(tpl.Slots[si].Table) {
				if g, feasible := cache.Gamma(qi, ti, si, ix); feasible && g < slotBest {
					slotBest = g
				}
			}
			if math.IsInf(slotBest, 1) {
				ok = false
				break
			}
			total += slotBest
		}
		if ok && total < want {
			want = total
		}
	}
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("Cost = %v, brute force = %v", got, want)
	}
}

func TestGammaMemoization(t *testing.T) {
	eng, cache, _ := testSetup(t)
	q := &workload.Query{
		ID:     "i-memo",
		Tables: []string{"orders"},
		Select: []catalog.ColumnRef{ref("orders", "o_totalprice")},
		Preds:  []workload.Predicate{{Col: ref("orders", "o_orderdate"), Op: workload.OpEq, Lo: 0.4}},
	}
	qi := cache.PrepareQuery(q)
	ix := &catalog.Index{Table: "orders", Key: []string{"o_orderdate"}}
	v1, ok1 := cache.Gamma(qi, 0, 0, ix)
	calls := eng.WhatIfCalls()
	v2, ok2 := cache.Gamma(qi, 0, 0, ix)
	if v1 != v2 || ok1 != ok2 {
		t.Fatalf("memoized gamma differs: %v/%v vs %v/%v", v1, ok1, v2, ok2)
	}
	if eng.WhatIfCalls() != calls {
		t.Fatal("memoized Gamma must not invoke the optimizer")
	}
}

func TestNoWhatIfCallsAfterPrepare(t *testing.T) {
	eng, cache, base := testSetup(t)
	w := workload.Hom(workload.HomConfig{Queries: 15, Seed: 23})
	cache.Prepare(w)
	// Evaluating costs for new configurations must be optimizer-free:
	// that is INUM's whole point.
	calls := eng.WhatIfCalls()
	cfg := base.Union(engine.NewConfig(&catalog.Index{Table: "lineitem", Key: []string{"l_shipdate"}}))
	if _, err := cache.WorkloadCost(w, cfg); err != nil {
		t.Fatal(err)
	}
	if eng.WhatIfCalls() != calls {
		t.Fatalf("WorkloadCost made %d optimizer calls", eng.WhatIfCalls()-calls)
	}
}

func TestUpdateStatementCost(t *testing.T) {
	_, cache, base := testSetup(t)
	u := &workload.Update{
		ID: "i-upd", Table: "lineitem", SetCols: []string{"l_quantity"},
		Where: []workload.Predicate{{Col: ref("lineitem", "l_orderkey"), Op: workload.OpRange, Lo: 0.5, Hi: 0.501}},
	}
	s := &workload.Statement{Update: u, Weight: 1}
	c0, err := cache.StatementCost(s, base)
	if err != nil {
		t.Fatal(err)
	}
	// An affected index adds maintenance cost that outweighs any
	// benefit to the narrow shell query.
	wide := base.Union(engine.NewConfig(&catalog.Index{Table: "lineitem", Key: []string{"l_quantity"}}))
	c1, err := cache.StatementCost(s, wide)
	if err != nil {
		t.Fatal(err)
	}
	if c1 <= c0 {
		t.Fatalf("affected index should raise update cost: %v -> %v", c0, c1)
	}
}

func TestHetWorkloadCoverage(t *testing.T) {
	eng, cache, base := testSetup(t)
	w := workload.Het(workload.HetConfig{Queries: 40, Seed: 24})
	cache.Prepare(w)
	for _, s := range w.Queries() {
		inumCost, err := cache.Cost(s.Query, base)
		if err != nil {
			t.Fatalf("%s: %v", s.Query.ID, err)
		}
		opt, _ := eng.WhatIfCost(s.Query, base)
		if inumCost < opt*(1-1e-6) {
			t.Fatalf("%s: INUM %v below optimal %v", s.Query.ID, inumCost, opt)
		}
	}
}
