package inum

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// TestShardedCacheMatchesSingleShard pins the striped map to the
// single-mutex reference: same entries, same costs, same prep
// accounting, regardless of stripe count.
func TestShardedCacheMatchesSingleShard(t *testing.T) {
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.05})
	eng := engine.New(cat, engine.SystemA())
	w := workload.Hom(workload.HomConfig{Queries: 20, Seed: 31})
	cfg := engine.NewConfig(tpch.BaselineIndexes(cat)...)

	one := newWithShards(eng, 1)
	many := newWithShards(eng, 64)
	one.Prepare(w)
	many.Prepare(w)
	if one.PrepCalls != many.PrepCalls {
		t.Fatalf("prep calls differ: %d vs %d", one.PrepCalls, many.PrepCalls)
	}
	for _, s := range w.Queries() {
		a, b := one.Info(s.Query), many.Info(s.Query)
		if a == nil || b == nil {
			t.Fatalf("%s missing from a cache (%v, %v)", s.Query.ID, a != nil, b != nil)
		}
		if len(a.Templates) != len(b.Templates) {
			t.Fatalf("%s template counts differ: %d vs %d", s.Query.ID, len(a.Templates), len(b.Templates))
		}
		ca, err1 := one.Cost(s.Query, cfg)
		cb, err2 := many.Cost(s.Query, cfg)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s cost errors: %v / %v", s.Query.ID, err1, err2)
		}
		if ca != cb {
			t.Fatalf("%s costs differ: %v vs %v", s.Query.ID, ca, cb)
		}
	}
}

// TestConcurrentPrepareQueryStress hammers PrepareQuery, Info, Cost and
// Gamma from many goroutines over an overlapping query set; run under
// -race it checks the shard discipline. Every caller must observe the
// same QueryInfo pointer for a given query (duplicate builds may race,
// but exactly one wins the insert).
func TestConcurrentPrepareQueryStress(t *testing.T) {
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.02})
	eng := engine.New(cat, engine.SystemA())
	w := workload.Hom(workload.HomConfig{Queries: 24, Seed: 32})
	cfg := engine.NewConfig(tpch.BaselineIndexes(cat)...)
	cache := New(eng)
	stmts := w.Queries()

	workers := 4 * runtime.GOMAXPROCS(0)
	rounds := 8
	got := make([][]*QueryInfo, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			got[wi] = make([]*QueryInfo, len(stmts))
			for r := 0; r < rounds; r++ {
				for si, s := range stmts {
					// Stagger the start so goroutines collide on
					// different shards each round.
					s = stmts[(si+wi)%len(stmts)]
					qi := cache.PrepareQuery(s.Query)
					if qi == nil || len(qi.Templates) == 0 {
						t.Errorf("%s: empty QueryInfo", s.Query.ID)
						return
					}
					got[wi][(si+wi)%len(stmts)] = qi
					if info := cache.Info(s.Query); info != qi {
						t.Errorf("%s: Info returned a different entry", s.Query.ID)
						return
					}
					if _, err := cache.Cost(s.Query, cfg); err != nil {
						t.Errorf("%s: cost: %v", s.Query.ID, err)
						return
					}
				}
			}
		}(wi)
	}
	wg.Wait()
	for wi := 1; wi < workers; wi++ {
		for si := range stmts {
			if got[wi][si] != got[0][si] {
				t.Fatalf("query %d: workers observed distinct QueryInfo pointers", si)
			}
		}
	}
}

// BenchmarkCachePrepareParallel measures the cache-hit PrepareQuery
// path under parallel load — the hot path of concurrent /whatif
// requests. The shards=1 variant is the pre-sharding single-mutex
// cache; the speedup of shards=64 over it is what the striping buys.
func BenchmarkCachePrepareParallel(b *testing.B) {
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.02})
	eng := engine.New(cat, engine.SystemA())
	w := workload.Hom(workload.HomConfig{Queries: 48, Seed: 33})
	stmts := w.Queries()

	for _, shards := range []int{1, 64} {
		name := "shards=1"
		if shards != 1 {
			name = "shards=64"
		}
		b.Run(name, func(b *testing.B) {
			cache := newWithShards(eng, shards)
			cache.Prepare(w)
			// Several goroutines per core: the single-mutex variant
			// degrades through slow-path wakeups even on few cores.
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := stmts[i%len(stmts)].Query
					if qi := cache.PrepareQuery(q); qi == nil {
						b.Fatal("nil QueryInfo")
					}
					i++
				}
			})
		})
	}
}
