package inum

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// TestShapeCacheEquivalence is the ISSUE's equivalence pin: template
// sets and compiled CostMatrix slabs served through the shape cache
// must be byte-identical to uncached derivations — same template
// count, same β bits, same slots, same γ slabs — over randomized
// homogeneous workloads. The control derives every query in its own
// fresh Cache, so no control derivation can hit a shape entry.
func TestShapeCacheEquivalence(t *testing.T) {
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.05})
	base := engine.NewConfig(tpch.BaselineIndexes(cat)...)

	var totalHits int64
	for _, seed := range []int64{101, 202} {
		w := workload.Hom(workload.HomConfig{Queries: 120, Seed: seed})
		eng := engine.New(cat, engine.SystemA())
		engCtl := engine.New(cat, engine.SystemA())

		shared := New(eng)
		shared.Prepare(w)
		hits, _ := shared.ShapeStats()
		totalHits += hits

		cands := matrixCandidates(t, w)
		cmA := shared.CompileMatrix(w, cands, base, 0)

		seen := map[string]bool{}
		for _, st := range w.Queries() {
			q := st.Query
			if seen[q.ID] {
				continue
			}
			seen[q.ID] = true

			ctl := New(engCtl) // fresh cache: this derivation cannot be shape-cached
			qiB := ctl.PrepareQuery(q)
			qiA := shared.Info(q)
			if qiA == nil {
				t.Fatalf("seed %d %s: not prepared in shared cache", seed, q.ID)
			}
			if len(qiA.Templates) != len(qiB.Templates) {
				t.Fatalf("seed %d %s: template counts %d vs %d", seed, q.ID, len(qiA.Templates), len(qiB.Templates))
			}
			for i := range qiA.Templates {
				a, b := qiA.Templates[i], qiB.Templates[i]
				if math.Float64bits(a.Internal) != math.Float64bits(b.Internal) {
					t.Fatalf("seed %d %s template %d: β bits differ: %v vs %v", seed, q.ID, i, a.Internal, b.Internal)
				}
				if !reflect.DeepEqual(a.Slots, b.Slots) {
					t.Fatalf("seed %d %s template %d: slots differ:\n  %+v\n  %+v", seed, q.ID, i, a.Slots, b.Slots)
				}
				if a.signature() != b.signature() {
					t.Fatalf("seed %d %s template %d: signatures differ", seed, q.ID, i)
				}
			}

			// The dense slab compiled from the shape-cached entry must
			// be byte-identical to the control's.
			cmB := ctl.CompileMatrix(&workload.Workload{Statements: []*workload.Statement{st}}, cands, base, 1)
			qa, qb := cmA.Query(q), cmB.Query(q)
			if qa == nil || qb == nil {
				t.Fatalf("seed %d %s: missing matrix block (%v, %v)", seed, q.ID, qa != nil, qb != nil)
			}
			sameI32 := func(x, y []int32) bool { return reflect.DeepEqual(x, y) }
			sameF64 := func(x, y []float64) bool {
				if len(x) != len(y) {
					return false
				}
				for i := range x {
					if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
						return false
					}
				}
				return true
			}
			if !sameF64(qa.Internal, qb.Internal) || !sameI32(qa.TmplOff, qb.TmplOff) ||
				!sameF64(qa.SlotFree, qb.SlotFree) || !sameI32(qa.SlotOff, qb.SlotOff) ||
				!sameI32(qa.Compat, qb.Compat) || !sameF64(qa.Gamma, qb.Gamma) {
				t.Fatalf("seed %d %s: CostMatrix slabs differ between shape-cached and uncached compilation", seed, q.ID)
			}
		}
	}
	// Non-vacuous: the shared caches must actually have served some
	// derivations from the shape cache, or this pinned nothing.
	if totalHits == 0 {
		t.Fatal("equivalence pin vacuous: no shape-cache hits across all seeds")
	}
}

// TestConcurrentShapeCacheStress hammers the striped shape cache from
// many goroutines with distinct statements sharing few shapes — the
// singleflight path — interleaved with exports, imports and stat
// reads. Run under -race it checks the stripe discipline; in any mode
// it checks that same-shape statements observe the same immutable
// template set.
func TestConcurrentShapeCacheStress(t *testing.T) {
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.02})
	eng := engine.New(cat, engine.SystemA())
	base := workload.Hom(workload.HomConfig{Queries: 12, Seed: 77})

	// Clone each query under several statement IDs: distinct statements,
	// identical shapes, so concurrent PrepareQuery calls collide on the
	// same shape entries.
	var stmts []*workload.Statement
	for _, st := range base.Queries() {
		for k := 0; k < 4; k++ {
			q := *st.Query
			q.ID = q.ID + "#" + string(rune('a'+k))
			stmts = append(stmts, &workload.Statement{Query: &q, Weight: 1})
		}
	}

	cache := newWithShards(eng, 2) // few stripes: maximum contention
	sink := New(eng)
	const G = 8
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3*len(stmts); i++ {
				st := stmts[rng.Intn(len(stmts))]
				qi := cache.PrepareQuery(st.Query)
				if qi == nil || len(qi.Templates) == 0 {
					t.Errorf("goroutine %d: empty preparation for %s", g, st.Query.ID)
					return
				}
				switch i % 5 {
				case 0:
					cache.ShapeStats()
				case 1:
					cache.ShapeCount()
				case 2:
					sink.ImportShapes(cache.ExportShapes())
				case 3:
					cache.Info(st.Query)
				}
			}
		}(g)
	}
	wg.Wait()

	// Same shape ⇒ same immutable template slice, shared by pointer.
	for _, st := range base.Queries() {
		var ref []*Template
		for k := 0; k < 4; k++ {
			q := *st.Query
			q.ID = st.Query.ID + "#" + string(rune('a'+k))
			qi := cache.Info(&q)
			if qi == nil {
				continue
			}
			if ref == nil {
				ref = qi.Templates
				continue
			}
			if len(ref) != len(qi.Templates) {
				t.Fatalf("%s: same shape, different template counts", q.ID)
			}
			for i := range ref {
				if ref[i] != qi.Templates[i] {
					t.Fatalf("%s: same shape not sharing the immutable template set", q.ID)
				}
			}
		}
	}
	hits, misses := cache.ShapeStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stress vacuous: hits=%d misses=%d", hits, misses)
	}
}
