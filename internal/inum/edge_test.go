package inum

import (
	"math"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// TestPrepareIdempotent: preparing the same query twice must not
// duplicate templates or optimizer calls.
func TestPrepareIdempotent(t *testing.T) {
	eng, cache, _ := testSetup(t)
	q := &workload.Query{
		ID:     "e-idem",
		Tables: []string{"orders"},
		Select: []catalog.ColumnRef{ref("orders", "o_totalprice")},
		Preds:  []workload.Predicate{{Col: ref("orders", "o_orderdate"), Op: workload.OpLt, Hi: 0.3}},
	}
	qi1 := cache.PrepareQuery(q)
	calls := eng.WhatIfCalls()
	qi2 := cache.PrepareQuery(q)
	if qi1 != qi2 {
		t.Fatal("PrepareQuery must return the cached entry")
	}
	if eng.WhatIfCalls() != calls {
		t.Fatal("re-preparation must not call the optimizer")
	}
}

// TestConcurrentPrepare: racing goroutines on one cache must settle on
// a single entry per query without data races.
func TestConcurrentPrepare(t *testing.T) {
	_, cache, base := testSetup(t)
	w := workload.Hom(workload.HomConfig{Queries: 20, Seed: 40})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, st := range w.Queries() {
				if _, err := cache.Cost(st.Query, base); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestTemplateCapRespected: a pathological many-order query must not
// exceed MaxTemplates.
func TestTemplateCapRespected(t *testing.T) {
	_, cache, _ := testSetup(t)
	cache.MaxTemplates = 4
	q := &workload.Query{
		ID:     "e-cap",
		Tables: []string{"lineitem", "orders", "customer"},
		Select: []catalog.ColumnRef{ref("lineitem", "l_extendedprice")},
		Joins: []workload.Join{
			{Left: ref("lineitem", "l_orderkey"), Right: ref("orders", "o_orderkey")},
			{Left: ref("orders", "o_custkey"), Right: ref("customer", "c_custkey")},
		},
		GroupBy:   []catalog.ColumnRef{ref("customer", "c_mktsegment")},
		Aggregate: true,
	}
	qi := cache.PrepareQuery(q)
	if len(qi.Templates) > 4 {
		t.Fatalf("templates = %d, cap 4", len(qi.Templates))
	}
}

// TestGammaInfeasibleMemoized: infeasible γ (wrong table, wrong order)
// must be memoized as ∞ and stay infeasible.
func TestGammaInfeasibleMemoized(t *testing.T) {
	_, cache, _ := testSetup(t)
	q := &workload.Query{
		ID:     "e-inf",
		Tables: []string{"orders"},
		Select: []catalog.ColumnRef{ref("orders", "o_totalprice")},
	}
	qi := cache.PrepareQuery(q)
	wrongTable := &catalog.Index{Table: "lineitem", Key: []string{"l_shipdate"}}
	if _, ok := cache.Gamma(qi, 0, 0, wrongTable); ok {
		t.Fatal("index on another table cannot fill the slot")
	}
	if _, ok := cache.Gamma(qi, 0, 0, wrongTable); ok {
		t.Fatal("memoized infeasibility lost")
	}
}

// TestCostAgainstSkewedEngine: INUM stays an upper bound under skew.
func TestCostAgainstSkewedEngine(t *testing.T) {
	cat := tpch.Build(tpch.Config{ScaleFactor: 0.05, Skew: 2})
	eng := engine.New(cat, engine.SystemA())
	cache := New(eng)
	base := engine.NewConfig(tpch.BaselineIndexes(cat)...)
	w := workload.Hom(workload.HomConfig{Queries: 20, Seed: 41})
	cache.Prepare(w)
	cfg := base.Union(engine.NewConfig(
		&catalog.Index{Table: "orders", Key: []string{"o_orderdate"}, Include: []string{"o_totalprice"}},
	))
	for _, st := range w.Queries() {
		inumCost, err := cache.Cost(st.Query, cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt, _ := eng.WhatIfCost(st.Query, cfg)
		if inumCost < opt*(1-1e-6) {
			t.Fatalf("%s: INUM %v below optimal %v under skew", st.Query.ID, inumCost, opt)
		}
		if math.IsInf(inumCost, 0) {
			t.Fatalf("%s: infinite INUM cost", st.Query.ID)
		}
	}
}

// TestWorkloadCostMatchesStatementSum: WorkloadCost is the weighted
// sum of StatementCost.
func TestWorkloadCostMatchesStatementSum(t *testing.T) {
	_, cache, base := testSetup(t)
	w := workload.Hom(workload.HomConfig{Queries: 8, UpdateFraction: 0.25, Seed: 42})
	total, err := cache.WorkloadCost(w, base)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, st := range w.Statements {
		c, err := cache.StatementCost(st, base)
		if err != nil {
			t.Fatal(err)
		}
		sum += st.Weight * c
	}
	if math.Abs(total-sum) > 1e-9*sum {
		t.Fatalf("WorkloadCost %v != Σ weighted statements %v", total, sum)
	}
}
