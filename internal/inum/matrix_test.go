package inum

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/workload"
)

// matrixCandidates builds a varied candidate set over the workload's
// tables: single-column, two-column and covering-ish indexes.
func matrixCandidates(t *testing.T, w *workload.Workload) []*catalog.Index {
	t.Helper()
	seen := map[string]bool{}
	var out []*catalog.Index
	add := func(ix *catalog.Index) {
		if !seen[ix.ID()] {
			seen[ix.ID()] = true
			out = append(out, ix)
		}
	}
	for _, st := range w.Queries() {
		q := st.Query
		for _, table := range q.Tables {
			cols := q.ColumnsOf(table)
			for _, c := range cols {
				add(&catalog.Index{Table: table, Key: []string{c}})
			}
			if len(cols) >= 2 {
				add(&catalog.Index{Table: table, Key: []string{cols[0], cols[1]}})
				add(&catalog.Index{Table: table, Key: []string{cols[0]}, Include: cols[1:]})
			}
		}
	}
	if len(out) < 10 {
		t.Fatalf("candidate generator too weak: %d candidates", len(out))
	}
	return out
}

// TestCostMatrixMatchesMapPath is the dense-vs-map equivalence
// property test: for randomized configurations X, the CostMatrix
// evaluation of cost(q, X) must equal the reference map-based path
// within 1e-9.
func TestCostMatrixMatchesMapPath(t *testing.T) {
	_, cache, base := testSetup(t)
	w := workload.Hom(workload.HomConfig{Queries: 15, Seed: 421})
	cache.Prepare(w)
	s := matrixCandidates(t, w)
	cm := cache.CompileMatrix(w, s, base, 0)

	rng := rand.New(rand.NewSource(99))
	sel := make([]bool, len(s))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		// Random configuration: each candidate in with probability p.
		p := []float64{0.05, 0.2, 0.5, 0.9}[trial%4]
		cfg := engine.NewConfig()
		for _, bx := range base.Indexes() {
			cfg.Add(bx)
		}
		for i := range sel {
			sel[i] = rng.Float64() < p
			if sel[i] {
				cfg.Add(s[i])
			}
		}
		for _, st := range w.Queries() {
			q := st.Query
			qm := cm.Query(q)
			if qm == nil {
				t.Fatalf("no matrix entry for %s", q.ID)
			}
			dense, dok := qm.Cost(sel)
			ref, err := cache.Cost(q, cfg)
			if err != nil {
				if dok {
					t.Fatalf("%s: map path infeasible but dense path returned %v", q.ID, dense)
				}
				continue
			}
			if !dok {
				t.Fatalf("%s: dense path infeasible but map path returned %v", q.ID, ref)
			}
			if math.Abs(dense-ref) > 1e-9*math.Max(1, math.Abs(ref)) {
				t.Fatalf("%s: dense cost %v != map cost %v (p=%v)", q.ID, dense, ref, p)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("property test checked nothing")
	}
}

// TestCostDeltaMatchesCost pins the benefit-scan shortcut to the plain
// evaluation: CostDelta(sel, a) must equal Cost(sel ∪ {a}).
func TestCostDeltaMatchesCost(t *testing.T) {
	_, cache, base := testSetup(t)
	w := workload.Hom(workload.HomConfig{Queries: 8, Seed: 77})
	cache.Prepare(w)
	s := matrixCandidates(t, w)
	cm := cache.CompileMatrix(w, s, base, 0)

	rng := rand.New(rand.NewSource(5))
	sel := make([]bool, len(s))
	for i := range sel {
		sel[i] = rng.Float64() < 0.3
	}
	for _, st := range w.Queries() {
		qm := cm.Query(st.Query)
		for a := 0; a < len(s); a += 3 {
			dv, dok := qm.CostDelta(sel, int32(a))
			was := sel[a]
			sel[a] = true
			cv, cok := qm.Cost(sel)
			sel[a] = was
			if dok != cok || (dok && dv != cv) {
				t.Fatalf("%s: CostDelta(%d)=%v,%v but Cost=%v,%v", st.Query.ID, a, dv, dok, cv, cok)
			}
		}
	}
	_ = rng
}

// TestCompileMatrixDeterministic ensures the parallel compilation
// produces identical slabs regardless of worker interleaving.
func TestCompileMatrixDeterministic(t *testing.T) {
	_, cache, base := testSetup(t)
	w := workload.Hom(workload.HomConfig{Queries: 10, Seed: 13})
	cache.Prepare(w)
	s := matrixCandidates(t, w)

	a := cache.CompileMatrix(w, s, base, 0)
	b := cache.CompileMatrix(w, s, base, 0)
	for _, st := range w.Queries() {
		qa, qb := a.Query(st.Query), b.Query(st.Query)
		if qa == nil || qb == nil {
			t.Fatalf("missing matrix entry for %s", st.Query.ID)
		}
		if len(qa.Gamma) != len(qb.Gamma) || len(qa.Compat) != len(qb.Compat) {
			t.Fatalf("%s: slab shapes differ", st.Query.ID)
		}
		for i := range qa.Gamma {
			if qa.Gamma[i] != qb.Gamma[i] || qa.Compat[i] != qb.Compat[i] {
				t.Fatalf("%s: slab entry %d differs", st.Query.ID, i)
			}
		}
	}
}
