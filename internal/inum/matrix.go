package inum

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/par"
	"repro/internal/workload"
)

// CostMatrix is the compiled, dense form of the INUM cost model for
// one (workload, candidate set, baseline) triple. Where the map-based
// path answers one γ_{qkia} probe at a time through a mutex-guarded
// map keyed by index ID strings, the matrix flattens every γ into
// contiguous float64 slabs with int32 slot→candidate compatibility
// lists, so evaluating cost(q, X) is a branch-light walk over dense
// memory with zero allocation, zero hashing and zero locking. BIPGen
// and the ILP baseline's configuration enumeration both consume it;
// the map path in Gamma/Cost remains as the reference implementation
// the equivalence property test checks against.
type CostMatrix struct {
	// S is the candidate universe; Compat entries are positions into S.
	S []*catalog.Index
	// byQuery maps query ID to its compiled block.
	byQuery map[string]*QueryMatrix
}

// QueryMatrix is the dense γ block of one query. Slots are numbered
// globally across templates; TmplOff[k]..TmplOff[k+1] are the slots of
// template k, and SlotOff[s]..SlotOff[s+1] the compatible candidates
// of slot s.
type QueryMatrix struct {
	// QI is the underlying cache entry (template structure).
	QI *QueryInfo
	// Internal is β per template.
	Internal []float64
	// TmplOff offsets templates into the slot arrays (len = #templates+1).
	TmplOff []int32
	// SlotFree is, per slot, the cheapest always-available access cost:
	// min over I∅ and the baseline indexes (+Inf when none applies).
	SlotFree []float64
	// SlotOff offsets slots into Compat/Gamma (len = #slots+1).
	SlotOff []int32
	// Compat lists the candidate positions with finite γ per slot.
	Compat []int32
	// Gamma holds the access costs aligned with Compat.
	Gamma []float64
}

// CompileMatrix builds the dense cost matrix for the workload's
// queries (and update shells) over candidate set s with baseline
// always-available indexes. Queries are independent, so compilation
// fans out across workers (0 = GOMAXPROCS); each worker writes only
// its own queries' entries.
func (c *Cache) CompileMatrix(w *workload.Workload, s []*catalog.Index, baseline *engine.Config, workers int) *CostMatrix {
	cm := &CostMatrix{S: s, byQuery: make(map[string]*QueryMatrix)}

	// Candidate positions grouped per table, so slot compilation only
	// scans same-table candidates.
	byTable := make(map[string][]int32)
	for i, ix := range s {
		byTable[ix.Table] = append(byTable[ix.Table], int32(i))
	}

	// Queries() yields the SELECT statements plus the update query
	// shells — exactly the statements BIPGen emits blocks for.
	// Statements can repeat a query ID (weighted duplicates); compile
	// each distinct query once.
	stmts := w.Queries()
	queries := make([]*workload.Query, 0, len(stmts))
	seen := make(map[string]bool, len(stmts))
	for _, st := range stmts {
		if !seen[st.Query.ID] {
			seen[st.Query.ID] = true
			queries = append(queries, st.Query)
		}
	}

	mats := make([]*QueryMatrix, len(queries))
	par.For(len(queries), workers, func(i int) {
		mats[i] = c.compileQuery(queries[i], s, byTable, baseline)
	})

	for i, q := range queries {
		cm.byQuery[q.ID] = mats[i]
	}
	return cm
}

// compileQuery flattens one query's γ values into a QueryMatrix.
func (c *Cache) compileQuery(q *workload.Query, s []*catalog.Index, byTable map[string][]int32, baseline *engine.Config) *QueryMatrix {
	qi := c.PrepareQuery(q)
	qm := &QueryMatrix{
		QI:       qi,
		Internal: make([]float64, len(qi.Templates)),
		TmplOff:  make([]int32, 1, len(qi.Templates)+1),
		SlotOff:  make([]int32, 1, 8),
	}
	for ti, tpl := range qi.Templates {
		qm.Internal[ti] = tpl.Internal
		for si := range tpl.Slots {
			slot := &tpl.Slots[si]

			free := math.Inf(1)
			if g, ok := c.slotCost(qi, ti, si, nil); ok {
				free = g
			}
			for _, bx := range baseline.OnTable(slot.Table) {
				if g, ok := c.slotCost(qi, ti, si, bx); ok && g < free {
					free = g
				}
			}
			qm.SlotFree = append(qm.SlotFree, free)

			for _, pos := range byTable[slot.Table] {
				if g, ok := c.slotCost(qi, ti, si, s[pos]); ok {
					qm.Compat = append(qm.Compat, pos)
					qm.Gamma = append(qm.Gamma, g)
				}
			}
			qm.SlotOff = append(qm.SlotOff, int32(len(qm.Compat)))
		}
		qm.TmplOff = append(qm.TmplOff, int32(len(qm.SlotFree)))
	}
	return qm
}

// slotCost computes γ for one (template, slot, access method) without
// touching the memo map — matrix compilation visits each γ exactly
// once, so memoization would only add locking.
func (c *Cache) slotCost(qi *QueryInfo, ti, si int, ix *catalog.Index) (float64, bool) {
	s := &qi.Templates[ti].Slots[si]
	switch s.Mode {
	case SlotScan:
		return c.Eng.SlotScanCost(qi.Query, s.Table, ix, s.RequiredOrder, s.NeedCols)
	case SlotLookup:
		return c.Eng.SlotLookupCost(qi.Query, s.Table, ix, s.JoinCol, s.Lookups, s.NeedCols)
	}
	return 0, false
}

// Query returns the compiled block of a query, or nil when the query
// was not part of the compiled workload.
func (cm *CostMatrix) Query(q *workload.Query) *QueryMatrix {
	return cm.byQuery[q.ID]
}

// Cost is the dense evaluation of cost(q, X) for X = baseline ∪
// {S[a] : selected[a]}: the minimum over templates of β plus, per
// slot, the cheapest of the free access and the selected compatible
// candidates. It mirrors Cache.Cost exactly (the property test holds
// them to 1e-9) but performs no map lookups and no allocation.
func (qm *QueryMatrix) Cost(selected []bool) (float64, bool) {
	return qm.CostDelta(selected, -1)
}

// CostDelta evaluates Cost as if selected[extra] were additionally
// set (extra < 0 means no addition — Cost delegates here with -1).
// It lets single-index benefit scans avoid mutating the selection
// buffer.
func (qm *QueryMatrix) CostDelta(selected []bool, extra int32) (float64, bool) {
	best := math.Inf(1)
	for ti := 0; ti < len(qm.Internal); ti++ {
		total := qm.Internal[ti]
		feasible := true
		for si := qm.TmplOff[ti]; si < qm.TmplOff[ti+1]; si++ {
			slotBest := qm.SlotFree[si]
			lo, hi := qm.SlotOff[si], qm.SlotOff[si+1]
			for k := lo; k < hi; k++ {
				a := qm.Compat[k]
				if (a == extra || selected[a]) && qm.Gamma[k] < slotBest {
					slotBest = qm.Gamma[k]
				}
			}
			if math.IsInf(slotBest, 1) {
				feasible = false
				break
			}
			total += slotBest
		}
		if feasible && total < best {
			best = total
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}
