package bip

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// knapsackModel builds max Σ v x (as min −v x) s.t. Σ w x ≤ cap, x binary.
func knapsackModel(vals, wts []float64, cap float64) Model {
	p := lp.NewProblem(len(vals))
	var coefs []lp.Coef
	bins := make([]int, len(vals))
	for i := range vals {
		p.SetObj(i, -vals[i])
		p.SetBounds(i, 0, 1)
		coefs = append(coefs, lp.Coef{Col: i, Val: wts[i]})
		bins[i] = i
	}
	p.AddRow(coefs, lp.LE, cap)
	return Model{P: p, Binaries: bins}
}

// bruteKnapsack enumerates all subsets.
func bruteKnapsack(vals, wts []float64, cap float64) float64 {
	n := len(vals)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var v, w float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += vals[i]
				w += wts[i]
			}
		}
		if w <= cap && v > best {
			best = v
		}
	}
	return best
}

func TestKnapsackExact(t *testing.T) {
	vals := []float64{60, 100, 120}
	wts := []float64{10, 20, 30}
	r := Solve(knapsackModel(vals, wts, 50), Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(-r.Obj-220) > 1e-6 {
		t.Fatalf("obj = %v, want -220", r.Obj)
	}
}

func TestRandomKnapsacksMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(8)
		vals := make([]float64, n)
		wts := make([]float64, n)
		var total float64
		for i := range vals {
			vals[i] = 1 + math.Floor(rng.Float64()*50)
			wts[i] = 1 + math.Floor(rng.Float64()*30)
			total += wts[i]
		}
		cap := math.Floor(total * (0.3 + rng.Float64()*0.4))
		r := Solve(knapsackModel(vals, wts, cap), Options{})
		want := bruteKnapsack(vals, wts, cap)
		if r.Status != Optimal || math.Abs(-r.Obj-want) > 1e-6 {
			t.Fatalf("trial %d (n=%d cap=%v): got %v (%v), want %v", trial, n, cap, -r.Obj, r.Status, want)
		}
	}
}

func TestInfeasibleBIP(t *testing.T) {
	p := lp.NewProblem(2)
	for j := 0; j < 2; j++ {
		p.SetBounds(j, 0, 1)
	}
	p.AddRow([]lp.Coef{{Col: 0, Val: 1}, {Col: 1, Val: 1}}, lp.GE, 3)
	r := Solve(Model{P: p, Binaries: []int{0, 1}}, Options{})
	if r.Status != Infeasible {
		t.Fatalf("status = %v", r.Status)
	}
	if CheckFeasible(Model{P: p, Binaries: []int{0, 1}}) {
		t.Fatal("CheckFeasible must fail: x+y ≥ 3 with x,y ≤ 1")
	}
}

func TestIntegralityGapBranching(t *testing.T) {
	// LP relaxation is fractional: x+y ≤ 1, maximize x+y with a
	// coupling row forcing x = y. Optimum binary: 0. The solver must
	// branch, not just round.
	p := lp.NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 1)
	p.AddRow([]lp.Coef{{Col: 0, Val: 1}, {Col: 1, Val: 1}}, lp.LE, 1)
	p.AddRow([]lp.Coef{{Col: 0, Val: 1}, {Col: 1, Val: -1}}, lp.EQ, 0)
	r := Solve(Model{P: p, Binaries: []int{0, 1}}, Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(r.Obj) > 1e-6 {
		t.Fatalf("obj = %v, want 0", r.Obj)
	}
}

func TestMIPStartAccepted(t *testing.T) {
	vals := []float64{10, 20, 30}
	wts := []float64{1, 2, 3}
	m := knapsackModel(vals, wts, 3)
	// Valid start: take item 2 (weight 3, value 30).
	start := []float64{0, 0, 1}
	var events int
	r := Solve(m, Options{Start: start, Progress: func(Event) { events++ }})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(-r.Obj-30) > 1e-6 {
		t.Fatalf("obj = %v", -r.Obj)
	}
}

func TestMIPStartInfeasibleIgnored(t *testing.T) {
	m := knapsackModel([]float64{10}, []float64{5}, 3)
	r := Solve(m, Options{Start: []float64{1}}) // violates knapsack
	if r.Status != Optimal || r.Obj != 0 {
		t.Fatalf("status=%v obj=%v", r.Status, r.Obj)
	}
}

func TestGapToleranceEarlyStop(t *testing.T) {
	// A larger knapsack with 5% gap tolerance must stop with a bound
	// certificate no worse than 5%.
	rng := rand.New(rand.NewSource(11))
	n := 20
	vals := make([]float64, n)
	wts := make([]float64, n)
	var total float64
	for i := range vals {
		vals[i] = 1 + rng.Float64()*50
		wts[i] = 1 + rng.Float64()*30
		total += wts[i]
	}
	m := knapsackModel(vals, wts, total*0.4)
	r := Solve(m, Options{GapTol: 0.05})
	if r.Status == Infeasible {
		t.Fatal("knapsack cannot be infeasible")
	}
	if r.Gap > 0.05+1e-9 && r.Status != Optimal {
		t.Fatalf("gap = %v after early stop", r.Gap)
	}
}

func TestProgressEventsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 14
	vals := make([]float64, n)
	wts := make([]float64, n)
	var total float64
	for i := range vals {
		vals[i] = 1 + rng.Float64()*50
		wts[i] = 1 + rng.Float64()*30
		total += wts[i]
	}
	m := knapsackModel(vals, wts, total*0.5)
	var uppers []float64
	Solve(m, Options{Progress: func(e Event) { uppers = append(uppers, e.Upper) }})
	for i := 1; i < len(uppers); i++ {
		if uppers[i] > uppers[i-1]+1e-9 {
			t.Fatalf("incumbent worsened: %v -> %v", uppers[i-1], uppers[i])
		}
	}
	if len(uppers) == 0 {
		t.Fatal("no progress events emitted")
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 18
	vals := make([]float64, n)
	wts := make([]float64, n)
	var total float64
	for i := range vals {
		vals[i] = 1 + rng.Float64()*50
		wts[i] = 1 + rng.Float64()*30
		total += wts[i]
	}
	m := knapsackModel(vals, wts, total*0.5)
	r := Solve(m, Options{MaxNodes: 3})
	if r.Nodes > 3 {
		t.Fatalf("explored %d nodes with limit 3", r.Nodes)
	}
}

func TestEqualityConstrainedBIP(t *testing.T) {
	// Choose exactly one of three options, each with a cost;
	// minimum is the cheapest option.
	p := lp.NewProblem(3)
	costs := []float64{5, 3, 9}
	var coefs []lp.Coef
	for j, c := range costs {
		p.SetObj(j, c)
		p.SetBounds(j, 0, 1)
		coefs = append(coefs, lp.Coef{Col: j, Val: 1})
	}
	p.AddRow(coefs, lp.EQ, 1)
	r := Solve(Model{P: p, Binaries: []int{0, 1, 2}}, Options{})
	if r.Status != Optimal || math.Abs(r.Obj-3) > 1e-6 {
		t.Fatalf("status=%v obj=%v", r.Status, r.Obj)
	}
	if math.Abs(r.X[1]-1) > 1e-6 {
		t.Fatalf("wrong option chosen: %v", r.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min −x − 0.5y with x binary, y continuous in [0, 2.5],
	// x + y ≤ 3 → x = 1, y = 2, obj = −2.
	p := lp.NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -0.5)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 2.5)
	p.AddRow([]lp.Coef{{Col: 0, Val: 1}, {Col: 1, Val: 1}}, lp.LE, 3)
	r := Solve(Model{P: p, Binaries: []int{0}}, Options{})
	if r.Status != Optimal || math.Abs(r.Obj+2) > 1e-6 {
		t.Fatalf("status=%v obj=%v x=%v", r.Status, r.Obj, r.X)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Feasible.String() != "feasible" || Infeasible.String() != "infeasible" {
		t.Fatal("status rendering")
	}
}
