// Package bip implements a branch-and-bound solver for binary integer
// programs over the lp package's simplex. Together with package lp it
// provides the three "off-the-shelf solver" services the CoPhy paper
// relies on (§4): a fast feasibility check for the hard constraints, a
// bound on the distance between the incumbent and the optimum
// (continuous feedback enabling early termination), and MIP starts
// that let re-tuning reuse prior work.
package bip

import (
	"context"
	"math"
	"sort"
	"time"

	"repro/internal/lp"
	"repro/internal/obs"
)

// Model is a binary integer program: an LP plus the set of variables
// restricted to {0,1}.
type Model struct {
	// P is the underlying linear program. Binary variables should have
	// bounds within [0,1].
	P *lp.Problem
	// Binaries lists the variable indices restricted to {0,1}.
	Binaries []int
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means the incumbent was proved optimal (gap 0 within
	// tolerance).
	Optimal Status = iota
	// Feasible means an incumbent exists but the search stopped early
	// (gap tolerance, node or time limit).
	Feasible
	// Infeasible means no binary assignment satisfies the constraints.
	Infeasible
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// Event is one progress report: the solver's current bounds.
type Event struct {
	// Elapsed is the time since Solve started.
	Elapsed time.Duration
	// Lower is the best proven lower bound on the optimum.
	Lower float64
	// Upper is the incumbent objective (+Inf before one is found).
	Upper float64
	// Gap is (Upper − Lower) / max(|Upper|, ε).
	Gap float64
	// Nodes is the number of explored nodes.
	Nodes int
}

// Options control the search.
type Options struct {
	// GapTol stops the search once the relative gap falls below it.
	// The paper's default tuning is 5% (§5.1).
	GapTol float64
	// MaxNodes caps explored nodes (0 means unlimited).
	MaxNodes int
	// TimeLimit caps wall time (0 means unlimited).
	TimeLimit time.Duration
	// Start, if non-nil, is a MIP start: a full variable assignment
	// used as the initial incumbent when feasible. Warm starts are how
	// CoPhy makes interactive re-tuning an order of magnitude cheaper
	// (§4.2, Figure 6b).
	Start []float64
	// Progress, if non-nil, receives bound-improvement events — the
	// feedback channel behind CoPhy's early-termination feature.
	Progress func(Event)
	// Ctx, when non-nil, serves two purposes: cancellation stops the
	// search at the next node boundary (the incumbent and proven bounds
	// are returned, like a time limit), and a request trace riding in it
	// (obs.TraceFrom) receives the node LPs' phase timings, so a
	// /recommend decomposes down to simplex phases even through the
	// branch-and-bound layer.
	Ctx context.Context
}

// Result is the outcome of a solve.
type Result struct {
	Status Status
	// X is the incumbent assignment (nil when Infeasible).
	X []float64
	// Obj is the incumbent objective.
	Obj float64
	// Lower is the final proven lower bound.
	Lower float64
	// Gap is the final relative gap.
	Gap float64
	// Nodes is the number of explored nodes.
	Nodes int
	// NumericFallbacks counts node LP solves that hit a numerical
	// failure in the sparse simplex and were finished by the dense
	// oracle (lp.Solution.NumericFallback) — observability for flaky
	// bases, threaded up to the daemon's /stats.
	NumericFallbacks int
	// WarmDowngrades counts node LP solves whose parent warm basis was
	// numerically defeated and installed cold instead.
	WarmDowngrades int
}

// intTol is the integrality tolerance.
const intTol = 1e-6

// CheckFeasible reports whether the model admits any fractional
// solution — the fast infeasibility screen of Figure 3 line 1. A
// false result proves the binary program infeasible too.
func CheckFeasible(m Model) bool {
	s := lp.Solve(m.P)
	return s.Status != lp.Infeasible
}

type node struct {
	fixed map[int]float64
	bound float64 // parent LP bound (lower bound on subtree)
	depth int
	// basis is the parent node's optimal LP basis. The child LP
	// differs from the parent's by a single variable bound, so its
	// re-solve warm-starts there and pivots from a near-optimal point
	// instead of running Phase 1 from scratch. Because a bound flip
	// never changes the basis *matrix*, the basis also carries the
	// parent's factorization (lp.Basis's LU snapshot, keyed by the
	// Clone-shared matrix stamp): the child adopts it outright and
	// installs the warm start in O(nnz) with no re-pivoting.
	basis *lp.Basis
}

// Solve runs best-bound branch and bound.
func Solve(m Model, opts Options) Result {
	start := time.Now()
	var (
		incumbent      []float64
		incObj         = math.Inf(1)
		nodes          int
		numFallbacks   int
		warmDowngrades int
		budgetOut      bool
	)
	report := func(lower float64) {
		if opts.Progress == nil {
			return
		}
		opts.Progress(Event{
			Elapsed: time.Since(start),
			Lower:   lower,
			Upper:   incObj,
			Gap:     relGap(incObj, lower),
			Nodes:   nodes,
		})
	}

	// Seed the incumbent from the MIP start if it is feasible and
	// integral on the binaries.
	if opts.Start != nil && len(opts.Start) == m.P.Cols() && m.P.Feasible(opts.Start, 1e-6) && integral(m, opts.Start) {
		incumbent = append([]float64(nil), opts.Start...)
		incObj = m.P.Objective(incumbent)
	}

	// Priority queue ordered by node bound (best-first).
	queue := []*node{{fixed: map[int]float64{}, bound: math.Inf(-1)}}
	globalLower := math.Inf(-1)

	tr := obs.TraceFrom(opts.Ctx)
	for len(queue) > 0 {
		if opts.MaxNodes > 0 && nodes >= opts.MaxNodes {
			break
		}
		if opts.TimeLimit > 0 && time.Since(start) > opts.TimeLimit {
			break
		}
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			break // cancelled: return the incumbent and proven bounds
		}
		// Pop the best-bound node.
		sort.Slice(queue, func(i, j int) bool { return queue[i].bound < queue[j].bound })
		nd := queue[0]
		queue = queue[1:]
		globalLower = nd.bound
		if len(queue) > 0 && queue[0].bound < globalLower {
			globalLower = queue[0].bound
		}

		if nd.bound >= incObj-1e-12 {
			continue // dominated by incumbent
		}
		nodes++

		// Solve the node LP, warm-starting from the parent's basis.
		p := m.P.Clone()
		for j, v := range nd.fixed {
			p.SetBounds(j, v, v)
		}
		sol := lp.SolveFrom(p, nd.basis)
		tr.Add("lp.phase1", sol.Phase1Dur)
		tr.Add("lp.phase2", sol.Phase2Dur)
		if sol.Refactors > 0 {
			tr.AddN("lp.factor", sol.FactorDur, int64(sol.Refactors))
		}
		if sol.NumericFallback {
			numFallbacks++
		}
		if sol.WarmDowngraded {
			warmDowngrades++
		}
		if sol.Status == lp.Infeasible {
			continue
		}
		if sol.Status == lp.Unbounded {
			// A bounded BIP over binaries cannot be unbounded unless
			// continuous variables are; treat conservatively.
			return Result{Status: Feasible, X: incumbent, Obj: incObj, Lower: math.Inf(-1), Gap: math.Inf(1), Nodes: nodes, NumericFallbacks: numFallbacks, WarmDowngrades: warmDowngrades}
		}
		if sol.Status == lp.IterLimit || sol.X == nil {
			// The node LP exhausted its pivot budget: its bound and
			// point are unusable (X may be nil). Stop the search with
			// what has been proven so far rather than prune unsoundly.
			budgetOut = true
			break
		}
		if sol.Obj >= incObj-1e-12 {
			continue
		}

		// Integral LP solution: new incumbent.
		frac := mostFractional(m, sol.X)
		if frac < 0 {
			if sol.Obj < incObj {
				incObj = sol.Obj
				incumbent = append([]float64(nil), sol.X...)
				report(globalLower)
			}
			continue
		}

		// Rounding heuristic: snap binaries and test feasibility.
		if incumbent == nil || sol.Obj < incObj {
			rounded := append([]float64(nil), sol.X...)
			for _, j := range m.Binaries {
				rounded[j] = math.Round(rounded[j])
			}
			if m.P.Feasible(rounded, 1e-6) {
				if obj := m.P.Objective(rounded); obj < incObj {
					incObj = obj
					incumbent = rounded
					report(globalLower)
				}
			}
		}

		// Early termination at the requested gap.
		if opts.GapTol > 0 && relGap(incObj, globalLower) <= opts.GapTol {
			break
		}

		// Branch on the most fractional binary.
		for _, v := range []float64{0, 1} {
			child := &node{fixed: make(map[int]float64, len(nd.fixed)+1), bound: sol.Obj, depth: nd.depth + 1, basis: sol.Basis}
			for k, val := range nd.fixed {
				child.fixed[k] = val
			}
			child.fixed[frac] = v
			queue = append(queue, child)
		}
	}

	// Final lower bound: best remaining node bound, or the incumbent
	// when the tree is exhausted. A budget-interrupted node's subtree
	// was never explored: its bound (globalLower, set at pop) must
	// keep the reported lower honest.
	lower := incObj
	if len(queue) > 0 {
		lower = queue[0].bound
		for _, nd := range queue {
			if nd.bound < lower {
				lower = nd.bound
			}
		}
	} else if globalLower > lower {
		lower = globalLower
	}
	if budgetOut && globalLower < lower {
		lower = globalLower
	}
	if incumbent == nil {
		if len(queue) == 0 && !budgetOut {
			return Result{Status: Infeasible, Nodes: nodes, Gap: math.Inf(1), Lower: lower, NumericFallbacks: numFallbacks, WarmDowngrades: warmDowngrades}
		}
		// No incumbent but the search stopped early (budget, limits):
		// infeasibility was NOT proven.
		return Result{Status: Feasible, Nodes: nodes, Gap: math.Inf(1), Lower: lower, NumericFallbacks: numFallbacks, WarmDowngrades: warmDowngrades}
	}
	gap := relGap(incObj, lower)
	st := Feasible
	if (len(queue) == 0 && !budgetOut) || gap <= 1e-9 {
		st = Optimal
		if gap < 0 {
			gap = 0
		}
	}
	report(lower)
	return Result{Status: st, X: incumbent, Obj: incObj, Lower: lower, Gap: gap, Nodes: nodes, NumericFallbacks: numFallbacks, WarmDowngrades: warmDowngrades}
}

// integral reports whether every binary is within tolerance of 0 or 1.
func integral(m Model, x []float64) bool {
	for _, j := range m.Binaries {
		if math.Abs(x[j]-math.Round(x[j])) > intTol {
			return false
		}
	}
	return true
}

// mostFractional returns the binary variable farthest from
// integrality, or −1 if all are integral.
func mostFractional(m Model, x []float64) int {
	best, bestDist := -1, intTol
	for _, j := range m.Binaries {
		d := math.Abs(x[j] - math.Round(x[j]))
		if d > bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}

// relGap returns the relative optimality gap between an upper and a
// lower bound.
func relGap(upper, lower float64) float64 {
	if math.IsInf(upper, 1) {
		return math.Inf(1)
	}
	den := math.Abs(upper)
	if den < 1e-9 {
		den = 1e-9
	}
	g := (upper - lower) / den
	if g < 0 {
		return 0
	}
	return g
}
